package js

import (
	"strings"
	"testing"
	"testing/quick"
)

// evalExpr runs "var __r = <expr>;" and returns __r.
func evalExpr(t *testing.T, expr string) Value {
	t.Helper()
	in := NewInterp()
	in.InstallStdlib(nil)
	if err := in.RunSource("var __r = (" + expr + ");"); err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	v, _ := in.Globals.Lookup("__r")
	return v
}

func runSrc(t *testing.T, src string) *Interp {
	t.Helper()
	in := NewInterp()
	in.InstallStdlib(nil)
	if err := in.RunSource(src); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return in
}

func global(t *testing.T, in *Interp, name string) Value {
	t.Helper()
	v, ok := in.Globals.Lookup(name)
	if !ok {
		t.Fatalf("global %q not defined", name)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2":           3,
		"10 - 4":          6,
		"6 * 7":           42,
		"9 / 2":           4.5,
		"10 % 3":          1,
		"2 + 3 * 4":       14,
		"(2 + 3) * 4":     20,
		"-5 + 2":          -3,
		"1 + 2 * 3 - 4/2": 5,
		"0x10 + 1":        17,
		"1.5e2":           150,
		"2e-1":            0.2,
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr).Number(); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestStringOps(t *testing.T) {
	if got := evalExpr(t, `"foo" + "bar"`).Text(); got != "foobar" {
		t.Errorf("concat = %q", got)
	}
	if got := evalExpr(t, `"n=" + 42`).Text(); got != "n=42" {
		t.Errorf("string+number = %q", got)
	}
	if got := evalExpr(t, `"abc".length`).Number(); got != 3 {
		t.Errorf("length = %v", got)
	}
	if got := evalExpr(t, `"Hello".toUpperCase()`).Text(); got != "HELLO" {
		t.Errorf("toUpperCase = %q", got)
	}
	if got := evalExpr(t, `"a,b,c".split(",").length`).Number(); got != 3 {
		t.Errorf("split = %v", got)
	}
	if got := evalExpr(t, `"hello".indexOf("ll")`).Number(); got != 2 {
		t.Errorf("indexOf = %v", got)
	}
	if got := evalExpr(t, `"hello".substring(1, 3)`).Text(); got != "el" {
		t.Errorf("substring = %q", got)
	}
	if got := evalExpr(t, `"  x ".trim()`).Text(); got != "x" {
		t.Errorf("trim = %q", got)
	}
	if got := evalExpr(t, `"aXbXc".replace("X", "-")`).Text(); got != "a-bXc" {
		t.Errorf("replace = %q", got)
	}
	if got := evalExpr(t, `"abc".charAt(1)`).Text(); got != "b" {
		t.Errorf("charAt = %q", got)
	}
	if got := evalExpr(t, `"A".charCodeAt(0)`).Number(); got != 65 {
		t.Errorf("charCodeAt = %v", got)
	}
	if got := evalExpr(t, `(3.14159).toFixed(2)`).Text(); got != "3.14" {
		t.Errorf("toFixed = %q", got)
	}
}

func TestComparisons(t *testing.T) {
	truthy := []string{
		"1 < 2", "2 <= 2", "3 > 2", "3 >= 3",
		"1 == 1", `1 == "1"`, "1 === 1", `"a" != "b"`, `1 !== "1"`,
		"null == undefined", "null === null",
		`"abc" < "abd"`,
	}
	for _, expr := range truthy {
		if !evalExpr(t, expr).Truthy() {
			t.Errorf("%s should be true", expr)
		}
	}
	falsy := []string{
		"2 < 1", `1 === "1"`, "null == 0", "undefined == 0", "null === undefined",
	}
	for _, expr := range falsy {
		if evalExpr(t, expr).Truthy() {
			t.Errorf("%s should be false", expr)
		}
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	in := runSrc(t, `
		var called = false;
		function f() { called = true; return true; }
		var a = false && f();
		var b = true || f();
	`)
	if global(t, in, "called").Truthy() {
		t.Fatal("short circuit failed: f was called")
	}
	if got := evalExpr(t, `"x" || "y"`).Text(); got != "x" {
		t.Errorf("|| value = %q", got)
	}
	if got := evalExpr(t, `0 && 1`).Number(); got != 0 {
		t.Errorf("&& value = %v", got)
	}
}

func TestTernary(t *testing.T) {
	if got := evalExpr(t, `1 < 2 ? "yes" : "no"`).Text(); got != "yes" {
		t.Errorf("ternary = %q", got)
	}
}

func TestVariablesAndScope(t *testing.T) {
	in := runSrc(t, `
		var x = 1;
		var y = 2, z = 3;
		{
			var inner = x + y + z;
			x = inner;
		}
	`)
	if got := global(t, in, "x").Number(); got != 6 {
		t.Fatalf("x = %v", got)
	}
	// Block-scoped variable must not leak.
	if _, ok := in.Globals.Lookup("inner"); ok {
		t.Fatal("block variable leaked to global scope")
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	in := runSrc(t, `
		function makeCounter() {
			var n = 0;
			return function() { n = n + 1; return n; };
		}
		var c1 = makeCounter();
		var c2 = makeCounter();
		c1(); c1();
		var a = c1();
		var b = c2();
	`)
	if got := global(t, in, "a").Number(); got != 3 {
		t.Fatalf("a = %v, want 3", got)
	}
	if got := global(t, in, "b").Number(); got != 1 {
		t.Fatalf("b = %v, want 1 (closures must not share state)", got)
	}
}

func TestRecursionAndHoisting(t *testing.T) {
	in := runSrc(t, `
		var r = even(10);
		function even(n) { if (n === 0) return true; return odd(n - 1); }
		function odd(n) { if (n === 0) return false; return even(n - 1); }
		var fib = function f(n) { return n < 2 ? n : f(n-1) + f(n-2); };
		var fib10 = fib(10);
	`)
	if !global(t, in, "r").Truthy() {
		t.Fatal("mutual recursion with hoisting failed")
	}
	if got := global(t, in, "fib10").Number(); got != 55 {
		t.Fatalf("fib(10) = %v", got)
	}
}

func TestLoops(t *testing.T) {
	in := runSrc(t, `
		var sum = 0;
		for (var i = 1; i <= 10; i++) { sum += i; }
		var w = 0;
		var j = 0;
		while (j < 5) { w += 2; j++; }
		var d = 0;
		do { d++; } while (d < 3);
		var brk = 0;
		for (var k = 0; k < 100; k++) { if (k === 5) break; brk = k; }
		var cont = 0;
		for (var m = 0; m < 10; m++) { if (m % 2 === 0) continue; cont++; }
	`)
	for name, want := range map[string]float64{"sum": 55, "w": 10, "d": 3, "brk": 4, "cont": 5} {
		if got := global(t, in, name).Number(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestObjectsAndArrays(t *testing.T) {
	in := runSrc(t, `
		var o = {a: 1, "b": 2, c: {d: 3}};
		o.e = o.a + o["b"];
		var arr = [1, 2, 3];
		arr.push(4);
		arr[10] = 99;
		var len = arr.length;
		var popped = [5,6].pop();
		var mapped = [1,2,3].map(function(x) { return x * 2; });
		var filtered = [1,2,3,4].filter(function(x) { return x % 2 === 0; });
		var joined = ["a","b"].join("-");
		var total = 0;
		[10, 20, 30].forEach(function(v, i) { total += v + i; });
		var sorted = [3,1,2].sort(function(a,b){ return a-b; });
		var idx = ["x","y"].indexOf("y");
		var sliced = [1,2,3,4].slice(1, 3);
		var cat = [1].concat([2,3], 4);
	`)
	o := global(t, in, "o").Object()
	if o.Get("e").Number() != 3 {
		t.Fatal("object property math wrong")
	}
	if o.Get("c").Object().Get("d").Number() != 3 {
		t.Fatal("nested object wrong")
	}
	if got := global(t, in, "len").Number(); got != 11 {
		t.Fatalf("sparse array length = %v, want 11", got)
	}
	if got := global(t, in, "popped").Number(); got != 6 {
		t.Fatalf("pop = %v", got)
	}
	if got := global(t, in, "mapped").Object().Elems[2].Number(); got != 6 {
		t.Fatalf("map = %v", got)
	}
	if got := len(global(t, in, "filtered").Object().Elems); got != 2 {
		t.Fatalf("filter = %d elems", got)
	}
	if got := global(t, in, "joined").Text(); got != "a-b" {
		t.Fatalf("join = %q", got)
	}
	if got := global(t, in, "total").Number(); got != 63 {
		t.Fatalf("forEach total = %v", got)
	}
	if got := global(t, in, "sorted").Object().Elems[0].Number(); got != 1 {
		t.Fatalf("sort = %v", got)
	}
	if got := global(t, in, "idx").Number(); got != 1 {
		t.Fatalf("indexOf = %v", got)
	}
	sl := global(t, in, "sliced").Object()
	if len(sl.Elems) != 2 || sl.Elems[0].Number() != 2 {
		t.Fatalf("slice = %v", sl.Elems)
	}
	if got := len(global(t, in, "cat").Object().Elems); got != 4 {
		t.Fatalf("concat = %d elems", got)
	}
}

func TestThisBinding(t *testing.T) {
	in := runSrc(t, `
		var obj = {
			n: 10,
			get: function() { return this.n; }
		};
		var got = obj.get();
	`)
	if got := global(t, in, "got").Number(); got != 10 {
		t.Fatalf("this.n = %v", got)
	}
}

func TestNewConstructor(t *testing.T) {
	in := runSrc(t, `
		function Point(x, y) { this.x = x; this.y = y; }
		var p = new Point(3, 4);
		var d2 = p.x * p.x + p.y * p.y;
	`)
	if got := global(t, in, "d2").Number(); got != 25 {
		t.Fatalf("d2 = %v", got)
	}
}

func TestIncrementDecrement(t *testing.T) {
	in := runSrc(t, `
		var a = 5;
		var post = a++;
		var b = a;
		var pre = ++a;
		var o = {n: 0};
		o.n++;
		o.n++;
		var arr = [10];
		arr[0]--;
	`)
	for name, want := range map[string]float64{"post": 5, "b": 6, "pre": 7} {
		if got := global(t, in, name).Number(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := global(t, in, "o").Object().Get("n").Number(); got != 2 {
		t.Errorf("o.n = %v", got)
	}
	if got := global(t, in, "arr").Object().Elems[0].Number(); got != 9 {
		t.Errorf("arr[0] = %v", got)
	}
}

func TestCompoundAssignment(t *testing.T) {
	in := runSrc(t, `
		var x = 10;
		x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
	`)
	if got := global(t, in, "x").Number(); got != 2 {
		t.Fatalf("x = %v, want 2", got)
	}
}

func TestTypeof(t *testing.T) {
	cases := map[string]string{
		`typeof 1`:            "number",
		`typeof "s"`:          "string",
		`typeof true`:         "boolean",
		`typeof undefined`:    "undefined",
		`typeof null`:         "object",
		`typeof {}`:           "object",
		`typeof []`:           "object",
		`typeof function(){}`: "function",
		`typeof neverDefined`: "undefined",
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr).Text(); got != want {
			t.Errorf("%s = %q, want %q", expr, got, want)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	cases := map[string]float64{
		"Math.abs(-3)":     3,
		"Math.floor(2.9)":  2,
		"Math.ceil(2.1)":   3,
		"Math.round(2.5)":  3,
		"Math.sqrt(16)":    4,
		"Math.pow(2, 10)":  1024,
		"Math.min(3,1,2)":  1,
		"Math.max(3,1,2)":  3,
		"Math.log(Math.E)": 1,
	}
	for expr, want := range cases {
		if got := evalExpr(t, expr).Number(); got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
	r := evalExpr(t, "Math.random()").Number()
	if r < 0 || r >= 1 {
		t.Errorf("Math.random() = %v", r)
	}
	// Determinism: two fresh interpreters yield the same sequence.
	a := evalExpr(t, "Math.random() + Math.random()")
	b := evalExpr(t, "Math.random() + Math.random()")
	if a.Number() != b.Number() {
		t.Error("Math.random not deterministic across interpreters")
	}
}

func TestConsoleLog(t *testing.T) {
	var msgs []string
	in := NewInterp()
	in.InstallStdlib(func(s string) { msgs = append(msgs, s) })
	if err := in.RunSource(`console.log("x =", 42, [1,2], {a: 1});`); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0] != "x = 42 [1, 2] {a: 1}" {
		t.Fatalf("console output = %q", msgs)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`undefinedVar + 1;`,
		`var x = null; x.prop;`,
		`var y; y.foo = 1;`,
		`var f = 42; f();`,
		`notAFunction();`,
	}
	for _, src := range cases {
		in := NewInterp()
		in.InstallStdlib(nil)
		if err := in.RunSource(src); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestThrow(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`throw "boom";`)
	if err == nil {
		t.Fatal("throw did not error")
	}
	re, ok := err.(*RuntimeError)
	if !ok || re.Thrown == nil || re.Thrown.Text() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestOpLimitStopsRunawayScript(t *testing.T) {
	in := NewInterp()
	in.SetOpLimit(10_000)
	err := in.RunSource(`while (true) { var x = 1; }`)
	if err == nil {
		t.Fatal("runaway loop not stopped")
	}
	if !strings.Contains(err.Error(), "operation limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestStackOverflowCaught(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`function f() { return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestOpsMetering(t *testing.T) {
	in := NewInterp()
	in.InstallStdlib(nil)
	if err := in.RunSource(`var x = 0;`); err != nil {
		t.Fatal(err)
	}
	base := in.ResetOps()
	if base <= 0 {
		t.Fatal("no ops counted")
	}
	if err := in.RunSource(`for (var i = 0; i < 100; i++) { x += i; }`); err != nil {
		t.Fatal(err)
	}
	loop := in.ResetOps()
	if loop < 300 {
		t.Fatalf("loop ops = %d, expected several per iteration", loop)
	}
	if in.Ops() != 0 {
		t.Fatal("ResetOps did not zero counter")
	}
	in.ChargeOps(500)
	if in.Ops() != 500 {
		t.Fatalf("ChargeOps not reflected: %d", in.Ops())
	}
}

func TestHostObjectProtocol(t *testing.T) {
	type hostRec struct {
		gets []string
		sets map[string]Value
	}
	h := &hostRec{sets: map[string]Value{}}
	host := hostFunc{
		get: func(name string) (Value, bool) {
			h.gets = append(h.gets, name)
			if name == "answer" {
				return Num(42), true
			}
			return Undefined, false
		},
		set: func(name string, v Value) bool {
			if name == "writable" {
				h.sets[name] = v
				return true
			}
			return false
		},
	}
	in := NewInterp()
	in.Globals.Define("host", ObjVal(NewHost(host)))
	err := in.RunSource(`
		var a = host.answer;
		host.writable = "w";
		host.plain = 7;
		var p = host.plain;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := in.Globals.Lookup("a"); v.Number() != 42 {
		t.Fatalf("host get = %v", v)
	}
	if h.sets["writable"].Text() != "w" {
		t.Fatal("host set not routed")
	}
	if v, _ := in.Globals.Lookup("p"); v.Number() != 7 {
		t.Fatalf("fallthrough property = %v", v)
	}
}

type hostFunc struct {
	get func(string) (Value, bool)
	set func(string, Value) bool
}

func (h hostFunc) HostGet(name string) (Value, bool) { return h.get(name) }
func (h hostFunc) HostSet(name string, v Value) bool { return h.set(name, v) }

func TestValueCoercions(t *testing.T) {
	if Num(0).Truthy() || !Num(1).Truthy() || Str("").Truthy() || !Str("x").Truthy() {
		t.Fatal("truthiness wrong")
	}
	if Str("42").Number() != 42 || Str(" 3.5 ").Number() != 3.5 {
		t.Fatal("string to number wrong")
	}
	if True.Number() != 1 || False.Number() != 0 || Null.Number() != 0 {
		t.Fatal("bool/null to number wrong")
	}
	if Num(1.5).Text() != "1.5" || Num(100).Text() != "100" {
		t.Fatal("number to string wrong")
	}
	if ObjVal(NewArray(Num(1), Num(2))).Text() != "1,2" {
		t.Fatal("array to string wrong")
	}
	if ObjVal(NewObject()).Text() != "[object Object]" {
		t.Fatal("object to string wrong")
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`var = 1;`,
		`function () {}`,
		`if (x`,
		`1 +`,
		`{a: }`,
		`"unterminated`,
		`/* unterminated`,
		`var x = 3 = 4;`,
		`@`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected syntax error", src)
		}
	}
}

func TestParseTolerance(t *testing.T) {
	// Optional semicolons before '}' and at EOF, else-if chains, unary
	// plus, empty statements, nested ternaries.
	srcs := []string{
		`var x = 1`,
		`function f() { return 1 }`,
		`if (1) { } else if (2) { } else { }`,
		`var y = +"3";`,
		`;;;`,
		`var z = 1 ? 2 : 3 ? 4 : 5;`,
		`for (;;) { break; }`,
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: unexpected error %v", src, err)
		}
	}
}

// Property: the interpreter computes the same sum as Go for random inputs.
func TestPropertyLoopSum(t *testing.T) {
	f := func(n uint8) bool {
		in := NewInterp()
		src := `var s = 0; for (var i = 0; i < ` + Num(float64(n)).Text() + `; i++) { s += i; }`
		if err := in.RunSource(src); err != nil {
			return false
		}
		v, _ := in.Globals.Lookup("s")
		want := float64(int(n)*(int(n)-1)) / 2
		return v.Number() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: string round-trip through the interpreter is identity.
func TestPropertyStringIdentity(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\"\\\n\r") || !isPrintable(s) {
			return true // skip strings needing escaping; covered elsewhere
		}
		in := NewInterp()
		if err := in.RunSource(`var v = "` + s + `";`); err != nil {
			return false
		}
		v, _ := in.Globals.Lookup("v")
		return v.Text() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func isPrintable(s string) bool {
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

func TestGoStringFormatting(t *testing.T) {
	if GoString(Num(3)) != "3" {
		t.Fatal("number formatting")
	}
	if GoString(Str("s")) != "s" {
		t.Fatal("string formatting")
	}
	obj := NewObject()
	obj.Set("b", Num(2))
	obj.Set("a", Num(1))
	if GoString(ObjVal(obj)) != "{b: 2, a: 1}" {
		t.Fatalf("object formatting = %s", GoString(ObjVal(obj)))
	}
}

func TestArgumentsObject(t *testing.T) {
	in := runSrc(t, `
		function f() { return arguments.length + arguments[0]; }
		var r = f(10, 20, 30);
	`)
	if got := global(t, in, "r").Number(); got != 13 {
		t.Fatalf("arguments = %v", got)
	}
}

func TestMissingArgsAreUndefined(t *testing.T) {
	in := runSrc(t, `
		function f(a, b) { return typeof b; }
		var r = f(1);
	`)
	if got := global(t, in, "r").Text(); got != "undefined" {
		t.Fatalf("missing arg = %q", got)
	}
}

// The Interp benchmarks pin the tree-walking path (execBlock) so they stay
// comparable against BenchmarkVMFib/BenchmarkVMLoop in vm_test.go; Run
// would otherwise route through the VM.
func BenchmarkInterpFib(b *testing.B) {
	prog := MustParse(`var f = function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }; f(15);`)
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, _, err := in.execBlock(prog.Body, in.Globals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	prog := MustParse(`var s = 0; for (var i = 0; i < 10000; i++) { s += i; }`)
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, _, err := in.execBlock(prog.Body, in.Globals); err != nil {
			b.Fatal(err)
		}
	}
}
