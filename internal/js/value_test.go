package js

import (
	"math"
	"strings"
	"testing"
)

// Edge-case tests for the value layer: coercions, equality, formatting,
// and builtin corner cases not covered by the language tests.

func TestNumberFormattingEdges(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "Infinity",
		math.Inf(-1): "-Infinity",
		0:            "0",
		-7:           "-7",
		0.25:         "0.25",
		1e21:         "1e+21",
		123456789012: "123456789012",
		-0.5:         "-0.5",
	}
	for in, want := range cases {
		if got := Num(in).Text(); got != want {
			t.Errorf("Num(%v).Text() = %q, want %q", in, got, want)
		}
	}
}

func TestLooseEqualsCoercions(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Num(1), Str("1"), true},
		{Num(0), Str(""), true}, // "" → 0
		{True, Num(1), true},
		{False, Num(0), true},
		{Null, Undefined, true},
		{Null, Num(0), false},
		{Undefined, Str("undefined"), false},
		{Str("a"), Str("a"), true},
		{Num(math.NaN()), Num(math.NaN()), false},
	}
	for _, c := range cases {
		if got := c.a.LooseEquals(c.b); got != c.want {
			t.Errorf("%v == %v → %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStrictEqualsObjects(t *testing.T) {
	o := ObjVal(NewObject())
	if !o.StrictEquals(o) {
		t.Fatal("object not identical to itself")
	}
	if o.StrictEquals(ObjVal(NewObject())) {
		t.Fatal("distinct objects equal")
	}
}

func TestStringNumberCoercionEdges(t *testing.T) {
	if !math.IsNaN(Str("abc").Number()) {
		t.Fatal("non-numeric string must be NaN")
	}
	if Str("").Number() != 0 || Str("  ").Number() != 0 {
		t.Fatal("empty/space string must be 0")
	}
	if !math.IsNaN(Undefined.Number()) {
		t.Fatal("undefined must be NaN")
	}
	if !math.IsNaN(ObjVal(NewObject()).Number()) {
		t.Fatal("object must be NaN")
	}
}

func TestArrayLengthTruncationAndGrowth(t *testing.T) {
	in := runSrc(t, `
		var a = [1, 2, 3, 4];
		a.length = 2;
		var afterTrunc = a.join(",");
		a.length = 4;
		var third = typeof a[2];
		var caught = "";
		try { a.length = -1; } catch (e) { caught = e; }
	`)
	if global(t, in, "afterTrunc").Text() != "1,2" {
		t.Fatal("length truncation failed")
	}
	if global(t, in, "third").Text() != "undefined" {
		t.Fatal("growth must pad with undefined")
	}
	if got := global(t, in, "caught").Text(); !strings.Contains(got, "invalid array length") {
		t.Fatalf("negative length must throw, caught = %q", got)
	}
}

func TestArrayMethodEdgeCases(t *testing.T) {
	in := runSrc(t, `
		var popEmpty = typeof [].pop();
		var shiftEmpty = typeof [].shift();
		var shifted = [7, 8].shift();
		var negSlice = [1,2,3,4].slice(-2).join(",");
		var crossSlice = [1,2,3].slice(2, 1).length;
		var sortDefault = [10, 9, 1].sort().join(","); // lexicographic
		var idxMissing = [1,2].indexOf(9);
	`)
	if global(t, in, "popEmpty").Text() != "undefined" || global(t, in, "shiftEmpty").Text() != "undefined" {
		t.Fatal("empty pop/shift wrong")
	}
	if global(t, in, "shifted").Number() != 7 {
		t.Fatal("shift wrong")
	}
	if global(t, in, "negSlice").Text() != "3,4" {
		t.Fatal("negative slice wrong")
	}
	if global(t, in, "crossSlice").Number() != 0 {
		t.Fatal("crossed slice must be empty")
	}
	if global(t, in, "sortDefault").Text() != "1,10,9" {
		t.Fatalf("default sort = %q", global(t, in, "sortDefault").Text())
	}
	if global(t, in, "idxMissing").Number() != -1 {
		t.Fatal("indexOf missing wrong")
	}
}

func TestStringMethodEdgeCases(t *testing.T) {
	in := runSrc(t, `
		var oob = "ab".charAt(5);
		var code = "ab".charCodeAt(9);
		var codeNaN = isNaN(code);
		var swap = "cb".substring(2, 0); // swapped bounds
		var noSplit = "abc".split().length;
	`)
	if global(t, in, "oob").Text() != "" {
		t.Fatal("charAt OOB must be empty string")
	}
	if !global(t, in, "codeNaN").Truthy() {
		t.Fatal("charCodeAt OOB must be NaN")
	}
	if global(t, in, "swap").Text() != "cb" {
		t.Fatal("substring bound swap wrong")
	}
	if global(t, in, "noSplit").Number() != 1 {
		t.Fatal("split without separator wrong")
	}
}

func TestSortComparatorErrorPropagates(t *testing.T) {
	in := NewInterp()
	in.InstallStdlib(nil)
	err := in.RunSource(`[3,1,2].sort(function(a, b) { return missing; });`)
	if err == nil {
		t.Fatal("comparator error swallowed")
	}
}

func TestEnvImplicitGlobal(t *testing.T) {
	in := runSrc(t, `
		function f() { leaked = 42; } // sloppy-mode implicit global
		f();
	`)
	if global(t, in, "leaked").Number() != 42 {
		t.Fatal("implicit global assignment failed")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindUndefined: "undefined", KindNull: "null", KindBool: "boolean",
		KindNumber: "number", KindString: "string", KindObject: "object",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if TokEOF.String() != "eof" || TokIdent.String() != "identifier" {
		t.Error("token kind strings wrong")
	}
}

func TestFunctionTextForms(t *testing.T) {
	if got := evalExpr(t, `"" + function named() {}`).Text(); got != "function named" {
		t.Fatalf("named fn text = %q", got)
	}
	if got := evalExpr(t, `"" + function () {}`).Text(); got != "function anonymous" {
		t.Fatalf("anon fn text = %q", got)
	}
}

func TestToFixedAndNumberMethodFallback(t *testing.T) {
	if got := evalExpr(t, `(5).toFixed()`).Text(); got != "5" {
		t.Fatalf("toFixed() = %q", got)
	}
	if got := evalExpr(t, `typeof (5).anything`).Text(); got != "undefined" {
		t.Fatalf("number prop fallback = %q", got)
	}
}

func TestArgumentsAndBoolProp(t *testing.T) {
	// Property access on booleans yields undefined, not an error.
	if got := evalExpr(t, `typeof true.x`).Text(); got != "undefined" {
		t.Fatalf("bool prop = %q", got)
	}
}
