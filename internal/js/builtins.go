package js

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
)

// arrayMethod synthesizes the built-in array methods scripts use. Methods
// close over the receiver object so they behave like bound methods.
func arrayMethod(o *Object, name string) (Value, bool) {
	if o == nil || !o.IsArray {
		return Undefined, false
	}
	switch name {
	case "push":
		return NativeFunc("push", func(in *Interp, this Value, args []Value) (Value, error) {
			o.Elems = append(o.Elems, args...)
			in.ChargeOps(int64(len(args)))
			return Num(float64(len(o.Elems))), nil
		}), true
	case "pop":
		return NativeFunc("pop", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			v := o.Elems[len(o.Elems)-1]
			o.Elems = o.Elems[:len(o.Elems)-1]
			return v, nil
		}), true
	case "shift":
		return NativeFunc("shift", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			v := o.Elems[0]
			o.Elems = o.Elems[1:]
			in.ChargeOps(int64(len(o.Elems)))
			return v, nil
		}), true
	case "indexOf":
		return NativeFunc("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Num(-1), nil
			}
			in.ChargeOps(int64(len(o.Elems)))
			for i, e := range o.Elems {
				if e.StrictEquals(args[0]) {
					return Num(float64(i)), nil
				}
			}
			return Num(-1), nil
		}), true
	case "join":
		return NativeFunc("join", func(in *Interp, this Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].Text()
			}
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				parts[i] = e.Text()
			}
			in.ChargeOps(int64(len(o.Elems)))
			return Str(strings.Join(parts, sep)), nil
		}), true
	case "slice":
		return NativeFunc("slice", func(in *Interp, this Value, args []Value) (Value, error) {
			start, end := 0, len(o.Elems)
			if len(args) > 0 {
				start = clampIndex(int(args[0].Number()), len(o.Elems))
			}
			if len(args) > 1 {
				end = clampIndex(int(args[1].Number()), len(o.Elems))
			}
			if start > end {
				start = end
			}
			out := NewArray(append([]Value(nil), o.Elems[start:end]...)...)
			in.ChargeOps(int64(end - start))
			return ObjVal(out), nil
		}), true
	case "concat":
		return NativeFunc("concat", func(in *Interp, this Value, args []Value) (Value, error) {
			out := NewArray(append([]Value(nil), o.Elems...)...)
			for _, a := range args {
				if ao := a.Object(); ao != nil && ao.IsArray {
					out.Elems = append(out.Elems, ao.Elems...)
				} else {
					out.Elems = append(out.Elems, a)
				}
			}
			in.ChargeOps(int64(len(out.Elems)))
			return ObjVal(out), nil
		}), true
	case "forEach":
		return NativeFunc("forEach", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Undefined, nil
			}
			for i, e := range o.Elems {
				if _, err := in.CallFunction(args[0], Undefined, []Value{e, Num(float64(i))}); err != nil {
					return Undefined, err
				}
			}
			return Undefined, nil
		}), true
	case "map":
		return NativeFunc("map", func(in *Interp, this Value, args []Value) (Value, error) {
			out := NewArray()
			if len(args) == 0 {
				return ObjVal(out), nil
			}
			for i, e := range o.Elems {
				v, err := in.CallFunction(args[0], Undefined, []Value{e, Num(float64(i))})
				if err != nil {
					return Undefined, err
				}
				out.Elems = append(out.Elems, v)
			}
			return ObjVal(out), nil
		}), true
	case "filter":
		return NativeFunc("filter", func(in *Interp, this Value, args []Value) (Value, error) {
			out := NewArray()
			if len(args) == 0 {
				return ObjVal(out), nil
			}
			for i, e := range o.Elems {
				v, err := in.CallFunction(args[0], Undefined, []Value{e, Num(float64(i))})
				if err != nil {
					return Undefined, err
				}
				if v.Truthy() {
					out.Elems = append(out.Elems, e)
				}
			}
			return ObjVal(out), nil
		}), true
	case "reduce":
		return NativeFunc("reduce", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Undefined, &RuntimeError{Msg: "reduce: missing callback"}
			}
			acc := Undefined
			start := 0
			if len(args) > 1 {
				acc = args[1]
			} else {
				if len(o.Elems) == 0 {
					return Undefined, &RuntimeError{Msg: "reduce of empty array with no initial value"}
				}
				acc = o.Elems[0]
				start = 1
			}
			for i := start; i < len(o.Elems); i++ {
				v, err := in.CallFunction(args[0], Undefined, []Value{acc, o.Elems[i], Num(float64(i))})
				if err != nil {
					return Undefined, err
				}
				acc = v
			}
			return acc, nil
		}), true
	case "reverse":
		return NativeFunc("reverse", func(in *Interp, this Value, args []Value) (Value, error) {
			for i, j := 0, len(o.Elems)-1; i < j; i, j = i+1, j-1 {
				o.Elems[i], o.Elems[j] = o.Elems[j], o.Elems[i]
			}
			in.ChargeOps(int64(len(o.Elems)))
			return ObjVal(o), nil
		}), true
	case "sort":
		return NativeFunc("sort", func(in *Interp, this Value, args []Value) (Value, error) {
			// Charge the comparisons actually performed (a flat 4*len guess
			// under-charged large sorts and over-charged tiny ones), and on a
			// comparator error restore the pre-sort order: a half-permuted
			// array must not leak out of a failed sort.
			var sortErr error
			var cmps int64
			var orig []Value
			if len(args) > 0 {
				orig = append([]Value(nil), o.Elems...)
			}
			sort.SliceStable(o.Elems, func(i, j int) bool {
				if sortErr != nil {
					return false
				}
				cmps++
				if len(args) > 0 {
					v, err := in.CallFunction(args[0], Undefined, []Value{o.Elems[i], o.Elems[j]})
					if err != nil {
						sortErr = err
						return false
					}
					return v.Number() < 0
				}
				return o.Elems[i].Text() < o.Elems[j].Text()
			})
			in.ChargeOps(cmps)
			if sortErr != nil {
				copy(o.Elems, orig)
				return Undefined, sortErr
			}
			return ObjVal(o), nil
		}), true
	}
	return Undefined, false
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// stringProp synthesizes string properties and methods.
func stringProp(s string, name string) Value {
	switch name {
	case "length":
		return Num(float64(len(s)))
	case "charAt":
		return NativeFunc("charAt", func(in *Interp, this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].Number())
			}
			if i < 0 || i >= len(s) {
				return Str(""), nil
			}
			return Str(s[i : i+1]), nil
		})
	case "charCodeAt":
		return NativeFunc("charCodeAt", func(in *Interp, this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].Number())
			}
			if i < 0 || i >= len(s) {
				return Num(math.NaN()), nil
			}
			return Num(float64(s[i])), nil
		})
	case "indexOf":
		return NativeFunc("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Num(-1), nil
			}
			in.ChargeOps(int64(len(s)) / 4)
			return Num(float64(strings.Index(s, args[0].Text()))), nil
		})
	case "substring":
		return NativeFunc("substring", func(in *Interp, this Value, args []Value) (Value, error) {
			start, end := 0, len(s)
			if len(args) > 0 {
				start = clampIndex(int(args[0].Number()), len(s))
			}
			if len(args) > 1 {
				end = clampIndex(int(args[1].Number()), len(s))
			}
			if start > end {
				start, end = end, start
			}
			return Str(s[start:end]), nil
		})
	case "split":
		return NativeFunc("split", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return ObjVal(NewArray(Str(s))), nil
			}
			parts := strings.Split(s, args[0].Text())
			arr := NewArray()
			for _, p := range parts {
				arr.Elems = append(arr.Elems, Str(p))
			}
			in.ChargeOps(int64(len(s)) / 4)
			return ObjVal(arr), nil
		})
	case "toUpperCase":
		return NativeFunc("toUpperCase", func(in *Interp, this Value, args []Value) (Value, error) {
			in.ChargeOps(int64(len(s)) / 4)
			return Str(strings.ToUpper(s)), nil
		})
	case "toLowerCase":
		return NativeFunc("toLowerCase", func(in *Interp, this Value, args []Value) (Value, error) {
			in.ChargeOps(int64(len(s)) / 4)
			return Str(strings.ToLower(s)), nil
		})
	case "trim":
		return NativeFunc("trim", func(in *Interp, this Value, args []Value) (Value, error) {
			return Str(strings.TrimSpace(s)), nil
		})
	case "replace":
		return NativeFunc("replace", func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return Str(s), nil
			}
			in.ChargeOps(int64(len(s)) / 4)
			return Str(strings.Replace(s, args[0].Text(), args[1].Text(), 1)), nil
		})
	}
	return Undefined
}

// rng is a small deterministic PRNG (xorshift64*) so Math.random is
// reproducible across runs; the simulation must be deterministic.
type rng struct{ state uint64 }

func (r *rng) next() float64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return float64(r.state*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// InstallStdlib defines Math, console, and misc globals. Console output is
// delivered to logf (which may be nil to discard).
func (in *Interp) InstallStdlib(logf func(string)) {
	r := &rng{state: 0x9E3779B97F4A7C15}

	mathObj := NewObject()
	math1 := func(name string, f func(float64) float64) {
		mathObj.Set(name, NativeFunc(name, func(in *Interp, this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Num(math.NaN()), nil
			}
			return Num(f(args[0].Number())), nil
		}))
	}
	math1("abs", math.Abs)
	math1("floor", math.Floor)
	math1("ceil", math.Ceil)
	math1("round", math.Round)
	math1("sqrt", math.Sqrt)
	math1("sin", math.Sin)
	math1("cos", math.Cos)
	math1("log", math.Log)
	math1("exp", math.Exp)
	mathObj.Set("pow", NativeFunc("pow", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Num(math.NaN()), nil
		}
		return Num(math.Pow(args[0].Number(), args[1].Number())), nil
	}))
	mathObj.Set("min", NativeFunc("min", func(in *Interp, this Value, args []Value) (Value, error) {
		m := math.Inf(1)
		for _, a := range args {
			m = math.Min(m, a.Number())
		}
		return Num(m), nil
	}))
	mathObj.Set("max", NativeFunc("max", func(in *Interp, this Value, args []Value) (Value, error) {
		m := math.Inf(-1)
		for _, a := range args {
			m = math.Max(m, a.Number())
		}
		return Num(m), nil
	}))
	mathObj.Set("random", NativeFunc("random", func(in *Interp, this Value, args []Value) (Value, error) {
		return Num(r.next()), nil
	}))
	mathObj.Set("PI", Num(math.Pi))
	mathObj.Set("E", Num(math.E))
	in.Globals.Define("Math", ObjVal(mathObj))

	consoleObj := NewObject()
	logFn := NativeFunc("log", func(in *Interp, this Value, args []Value) (Value, error) {
		if logf != nil {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = GoString(a)
			}
			logf(strings.Join(parts, " "))
		}
		return Undefined, nil
	})
	consoleObj.Set("log", logFn)
	consoleObj.Set("warn", logFn)
	consoleObj.Set("error", logFn)
	in.Globals.Define("console", ObjVal(consoleObj))

	in.Globals.Define("isNaN", NativeFunc("isNaN", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return True, nil
		}
		return Boolean(math.IsNaN(args[0].Number())), nil
	}))
	in.Globals.Define("parseInt", NativeFunc("parseInt", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Num(math.NaN()), nil
		}
		return Num(math.Trunc(args[0].Number())), nil
	}))
	in.Globals.Define("parseFloat", NativeFunc("parseFloat", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Num(math.NaN()), nil
		}
		return Num(args[0].Number()), nil
	}))
	in.Globals.Define("String", NativeFunc("String", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Str(""), nil
		}
		return Str(args[0].Text()), nil
	}))
	in.Globals.Define("Number", NativeFunc("Number", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Num(0), nil
		}
		return Num(args[0].Number()), nil
	}))

	arrayObj := NewObject()
	arrayObj.Set("isArray", NativeFunc("isArray", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		o := args[0].Object()
		return Boolean(o != nil && o.IsArray), nil
	}))
	in.Globals.Define("Array", ObjVal(arrayObj))

	objectObj := NewObject()
	objectObj.Set("keys", NativeFunc("keys", func(in *Interp, this Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 {
			if o := args[0].Object(); o != nil {
				for _, k := range o.Keys() {
					arr.Elems = append(arr.Elems, Str(k))
				}
				in.ChargeOps(int64(len(arr.Elems)))
			}
		}
		return ObjVal(arr), nil
	}))
	in.Globals.Define("Object", ObjVal(objectObj))

	jsonObj := NewObject()
	jsonObj.Set("stringify", NativeFunc("stringify", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, nil
		}
		var b strings.Builder
		if !stringifyJSON(args[0], 0, &b) {
			// Top-level undefined or function: JSON.stringify returns
			// undefined, as in JavaScript.
			return Undefined, nil
		}
		in.ChargeOps(int64(b.Len()) / 2)
		return Str(b.String()), nil
	}))
	jsonObj.Set("parse", NativeFunc("parse", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, &RuntimeError{Msg: "JSON.parse: missing argument"}
		}
		var v any
		if err := json.Unmarshal([]byte(args[0].Text()), &v); err != nil {
			return Undefined, &RuntimeError{Msg: "JSON.parse: " + err.Error(), Thrown: thrownStr("SyntaxError: " + err.Error())}
		}
		in.ChargeOps(int64(len(args[0].Text())) / 2)
		return fromGo(v), nil
	}))
	in.Globals.Define("JSON", ObjVal(jsonObj))
}

func thrownStr(s string) *Value {
	v := Str(s)
	return &v
}

// stringifyJSON encodes a script value as JSON in property insertion order
// (real JavaScript enumeration order — the old path lowered objects to
// map[string]any and let encoding/json sort the keys). It reports false for
// values JSON.stringify omits entirely (undefined and functions): omitted
// object members drop their key, omitted array elements encode as null.
// Over-deep structures (the depth cap guards cycles) encode as null.
func stringifyJSON(v Value, depth int, b *strings.Builder) bool {
	if depth > 64 {
		b.WriteString("null")
		return true
	}
	switch v.Kind() {
	case KindUndefined:
		return false
	case KindNull:
		b.WriteString("null")
	case KindBool:
		if v.Truthy() {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case KindNumber:
		writeJSONNumber(b, v.Number())
	case KindString:
		writeJSONString(b, v.Text())
	default:
		o := v.Object()
		if o.Fn != nil {
			return false
		}
		if o.IsArray {
			b.WriteByte('[')
			for i, e := range o.Elems {
				if i > 0 {
					b.WriteByte(',')
				}
				if !stringifyJSON(e, depth+1, b) {
					b.WriteString("null")
				}
			}
			b.WriteByte(']')
			return true
		}
		b.WriteByte('{')
		first := true
		for _, k := range o.order {
			var member strings.Builder
			if !stringifyJSON(o.Props[k], depth+1, &member) {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			writeJSONString(b, k)
			b.WriteByte(':')
			b.WriteString(member.String())
		}
		b.WriteByte('}')
	}
	return true
}

// writeJSONString appends a JSON-escaped string using encoding/json's
// escaping rules, so string bytes match the pre-rewrite encoder exactly.
func writeJSONString(b *strings.Builder, s string) {
	data, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		b.WriteString(`""`)
		return
	}
	b.Write(data)
}

// writeJSONNumber appends a number with encoding/json's formatting;
// non-finite numbers encode as null (as JSON.stringify does in JavaScript,
// where encoding/json would instead fail the whole document).
func writeJSONNumber(b *strings.Builder, f float64) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		b.WriteString("null")
		return
	}
	data, err := json.Marshal(f)
	if err != nil {
		b.WriteString("null")
		return
	}
	b.Write(data)
}

// fromGo converts a decoded JSON value into a script value.
func fromGo(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case bool:
		return Boolean(x)
	case float64:
		return Num(x)
	case string:
		return Str(x)
	case []any:
		arr := NewArray()
		for _, e := range x {
			arr.Elems = append(arr.Elems, fromGo(e))
		}
		return ObjVal(arr)
	case map[string]any:
		// encoding/json loses document order, and Go map iteration is
		// randomized; sort so a parsed object's enumeration order (and any
		// re-stringify) is deterministic across runs and workers.
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		o := NewObject()
		for _, k := range keys {
			o.Set(k, fromGo(x[k]))
		}
		return ObjVal(o)
	default:
		return Undefined
	}
}
