package js

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates runtime value types.
type Kind int

const (
	// KindUndefined is the undefined value.
	KindUndefined Kind = iota
	// KindNull is the null value.
	KindNull
	// KindBool is a boolean.
	KindBool
	// KindNumber is a float64 number.
	KindNumber
	// KindString is a string.
	KindString
	// KindObject covers objects, arrays, and functions.
	KindObject
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	default:
		return "unknown"
	}
}

// Value is a runtime value.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
	obj  *Object
}

// Undefined and Null are the singleton non-values.
var (
	Undefined = Value{kind: KindUndefined}
	Null      = Value{kind: KindNull}
	True      = Value{kind: KindBool, b: true}
	False     = Value{kind: KindBool}
)

// Num makes a number value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Str makes a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Boolean makes a bool value.
func Boolean(b bool) Value {
	if b {
		return True
	}
	return False
}

// ObjVal wraps an object.
func ObjVal(o *Object) Value { return Value{kind: KindObject, obj: o} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether the value is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNullish reports whether the value is null or undefined.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// Object returns the underlying object, or nil for non-objects.
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// Truthy applies JavaScript truthiness.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	default:
		return true
	}
}

// Number coerces the value to a number (JS ToNumber semantics, simplified).
func (v Value) Number() float64 {
	switch v.kind {
	case KindNumber:
		return v.num
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindNull:
		return 0
	default:
		return math.NaN()
	}
}

// Text coerces the value to a string (JS ToString, simplified).
func (v Value) Text() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		return formatNumber(v.num)
	case KindString:
		return v.str
	default:
		o := v.obj
		switch {
		case o.Fn != nil:
			name := o.Fn.Name
			if name == "" {
				name = "anonymous"
			}
			return "function " + name
		case o.IsArray:
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if e.IsNullish() {
					parts[i] = ""
				} else {
					parts[i] = e.Text()
				}
			}
			return strings.Join(parts, ",")
		default:
			return "[object Object]"
		}
	}
}

func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func (v Value) String() string { return v.Text() }

// StrictEquals implements ===.
func (v Value) StrictEquals(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindNumber:
		return v.num == o.num
	case KindString:
		return v.str == o.str
	default:
		return v.obj == o.obj
	}
}

// LooseEquals implements == with the coercions that occur in practice.
func (v Value) LooseEquals(o Value) bool {
	if v.kind == o.kind {
		return v.StrictEquals(o)
	}
	if v.IsNullish() && o.IsNullish() {
		return true
	}
	if v.IsNullish() || o.IsNullish() {
		return false
	}
	return v.Number() == o.Number()
}

// HostObject lets Go-side objects (DOM nodes, style proxies, the browser
// window) participate in property access. Get reports ok=false to fall
// through to ordinary properties; Set reports false to store in the ordinary
// property map instead.
type HostObject interface {
	HostGet(name string) (Value, bool)
	HostSet(name string, v Value) bool
}

// Object is the heap value behind objects, arrays, and functions.
type Object struct {
	Props   map[string]Value
	Elems   []Value
	IsArray bool
	Fn      *Function
	Host    HostObject

	// order tracks Props keys in insertion order, the enumeration order
	// real JavaScript uses for for-in, Object.keys, and JSON.stringify.
	// Maintained by Set/Delete; re-setting an existing key keeps its slot.
	order []string
}

// NewObject returns an empty plain object.
func NewObject() *Object { return &Object{Props: map[string]Value{}} }

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{IsArray: true, Elems: elems, Props: map[string]Value{}}
}

// NewHost returns an object backed by a host implementation.
func NewHost(h HostObject) *Object {
	return &Object{Props: map[string]Value{}, Host: h}
}

// Get reads a property, consulting the host first, then array intrinsics,
// then the property map.
func (o *Object) Get(name string) Value {
	if o.Host != nil {
		if v, ok := o.Host.HostGet(name); ok {
			return v
		}
	}
	if o.IsArray {
		if name == "length" {
			return Num(float64(len(o.Elems)))
		}
		if i, err := strconv.Atoi(name); err == nil {
			if i >= 0 && i < len(o.Elems) {
				return o.Elems[i]
			}
			return Undefined
		}
	}
	if v, ok := o.Props[name]; ok {
		return v
	}
	return Undefined
}

// MaxArrayGrowth bounds how many elements a single array store may fill in.
// Scripts that try to grow an array further (a.length = 1e9, a[1e9] = 1) get
// a catchable RuntimeError instead of OOMing the process: the simulated op
// budget could never afford touching that many elements anyway.
const MaxArrayGrowth = 1 << 20

// Set writes a property, consulting the host first. Host Go code uses this
// unmetered entry point; script assignments go through SetMetered so array
// growth is charged and bounded. Out-of-range array writes are dropped here
// rather than allowed to allocate unboundedly.
func (o *Object) Set(name string, v Value) {
	o.SetMetered(nil, name, v) //nolint:errcheck // host writes drop range errors
}

// SetMetered writes a property on behalf of a script: array growth charges
// interpreter ops proportional to the elements filled and is bounded by
// MaxArrayGrowth, and invalid array lengths (NaN, ±Infinity, negative,
// fractional) are rejected like JavaScript's RangeError instead of being
// truncated through an implementation-defined int(float64) conversion.
// A nil interpreter skips the charging (host writes).
func (o *Object) SetMetered(in *Interp, name string, v Value) error {
	if o.Host != nil && o.Host.HostSet(name, v) {
		return nil
	}
	if o.IsArray {
		if name == "length" {
			return o.setLength(in, v)
		}
		if i, err := strconv.Atoi(name); err == nil && i >= 0 {
			if i >= len(o.Elems) {
				fill := i + 1 - len(o.Elems)
				if fill > MaxArrayGrowth {
					return &RuntimeError{Msg: fmt.Sprintf("array index %d grows array by %d elements (limit %d)", i, fill, MaxArrayGrowth)}
				}
				if in != nil {
					in.ChargeOps(int64(fill))
				}
				for len(o.Elems) <= i {
					o.Elems = append(o.Elems, Undefined)
				}
			}
			o.Elems[i] = v
			return nil
		}
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	if _, exists := o.Props[name]; !exists {
		o.order = append(o.order, name)
	}
	o.Props[name] = v
	return nil
}

// setLength implements assignment to an array's length property with
// JavaScript's validation: the value must be a non-negative integer number
// (ToNumber first), growth is charged per element filled and bounded.
func (o *Object) setLength(in *Interp, v Value) error {
	f := v.Number()
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f != math.Trunc(f) {
		return &RuntimeError{Msg: "invalid array length: " + v.Text()}
	}
	cur := len(o.Elems)
	if f > float64(cur) {
		grow := f - float64(cur)
		if grow > MaxArrayGrowth {
			return &RuntimeError{Msg: fmt.Sprintf("array length %s grows array by %s elements (limit %d)", formatNumber(f), formatNumber(grow), MaxArrayGrowth)}
		}
		if in != nil {
			in.ChargeOps(int64(grow))
		}
		for len(o.Elems) < int(f) {
			o.Elems = append(o.Elems, Undefined)
		}
		return nil
	}
	o.Elems = o.Elems[:int(f)]
	return nil
}

// Delete removes a property, keeping the insertion-order index consistent.
// Array element storage is untouched (delete a[i] leaves a hole in Props
// semantics only), matching the previous interpreter behaviour.
func (o *Object) Delete(name string) {
	if _, ok := o.Props[name]; !ok {
		return
	}
	delete(o.Props, name)
	for i, k := range o.order {
		if k == name {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
}

// Keys returns the object's own enumerable property names: array indexes
// first, then named properties in insertion order (real JavaScript
// enumeration order, which for-in, Object.keys, and JSON.stringify share).
func (o *Object) Keys() []string {
	var ks []string
	if o.IsArray {
		for i := range o.Elems {
			ks = append(ks, strconv.Itoa(i))
		}
	}
	return append(ks, o.order...)
}

// Function is a callable: native (Native), compiled bytecode (Code), or
// tree-walked (Body). Code and Body coexist on functions produced under the
// VM; Code wins at invoke time so a function value compiled once keeps
// running on the VM wherever it flows.
type Function struct {
	Name   string
	Params []string
	Body   []Stmt
	Env    *Env
	Native func(in *Interp, this Value, args []Value) (Value, error)
	Code   *compiledFn
}

// NativeFunc wraps a Go function as a callable value.
func NativeFunc(name string, fn func(in *Interp, this Value, args []Value) (Value, error)) Value {
	return ObjVal(&Object{Props: map[string]Value{}, Fn: &Function{Name: name, Native: fn}})
}

// envSmallMax is the inline-storage capacity of a scope frame. Most frames
// (function invokes, block scopes) hold a handful of variables; keeping them
// in parallel slices avoids a map allocation per frame on the interpreter's
// hottest path. Frames that outgrow it (the globals) promote to a map.
const envSmallMax = 16

// Env is a lexical scope frame. Storage starts as small parallel slices and
// promotes to a map past envSmallMax entries; lookup semantics are identical
// either way (variable shadowing is by frame, never by position).
type Env struct {
	names  []string
	vals   []Value
	vars   map[string]Value // non-nil once promoted
	parent *Env
}

// NewEnv returns a scope nested in parent (which may be nil for globals).
// The frame allocates no storage until its first Define.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

// NewEnvCap is NewEnv with a compiler-supplied binding-count hint: the
// parallel slices are sized once up front instead of growing per Define.
func NewEnvCap(parent *Env, n int) *Env {
	if n <= 0 {
		return &Env{parent: parent}
	}
	if n > envSmallMax {
		n = envSmallMax // frame will promote to a map anyway
	}
	return &Env{parent: parent, names: make([]string, 0, n), vals: make([]Value, 0, n)}
}

// getLocal reads a variable from this frame only.
func (e *Env) getLocal(name string) (Value, bool) {
	if e.vars != nil {
		v, ok := e.vars[name]
		return v, ok
	}
	for i, n := range e.names {
		if n == name {
			return e.vals[i], true
		}
	}
	return Undefined, false
}

// setLocal overwrites a variable that exists in this frame. It reports
// whether the variable was present.
func (e *Env) setLocal(name string, v Value) bool {
	if e.vars != nil {
		if _, ok := e.vars[name]; ok {
			e.vars[name] = v
			return true
		}
		return false
	}
	for i, n := range e.names {
		if n == name {
			e.vals[i] = v
			return true
		}
	}
	return false
}

// Lookup finds a variable, walking outward.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.getLocal(name); ok {
			return v, true
		}
	}
	return Undefined, false
}

// Define creates or overwrites a variable in this scope.
func (e *Env) Define(name string, v Value) {
	if e.setLocal(name, v) {
		return
	}
	if e.vars != nil {
		e.vars[name] = v
		return
	}
	if len(e.names) >= envSmallMax {
		e.vars = make(map[string]Value, len(e.names)+1)
		for i, n := range e.names {
			e.vars[n] = e.vals[i]
		}
		e.names, e.vals = nil, nil
		e.vars[name] = v
		return
	}
	e.names = append(e.names, name)
	e.vals = append(e.vals, v)
}

// Assign sets an existing variable in the nearest scope defining it; if none
// does, it defines a global (sloppy-mode JavaScript behaviour).
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if s.setLocal(name, v) {
			return
		}
		if s.parent == nil {
			s.Define(name, v) // implicit global
			return
		}
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.obj != nil && v.obj.Fn != nil {
			return "function"
		}
		return "object"
	}
}

// GoString renders a value for diagnostics (console.log formatting).
func GoString(v Value) string {
	switch v.kind {
	case KindString:
		return v.str
	case KindObject:
		o := v.obj
		if o.Fn != nil {
			return v.Text()
		}
		if o.IsArray {
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				parts[i] = GoString(e)
			}
			return "[" + strings.Join(parts, ", ") + "]"
		}
		var parts []string
		for _, k := range o.Keys() {
			parts = append(parts, fmt.Sprintf("%s: %s", k, GoString(o.Props[k])))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return v.Text()
	}
}
