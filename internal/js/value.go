package js

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates runtime value types.
type Kind int

const (
	// KindUndefined is the undefined value.
	KindUndefined Kind = iota
	// KindNull is the null value.
	KindNull
	// KindBool is a boolean.
	KindBool
	// KindNumber is a float64 number.
	KindNumber
	// KindString is a string.
	KindString
	// KindObject covers objects, arrays, and functions.
	KindObject
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	default:
		return "unknown"
	}
}

// Value is a runtime value.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
	obj  *Object
}

// Undefined and Null are the singleton non-values.
var (
	Undefined = Value{kind: KindUndefined}
	Null      = Value{kind: KindNull}
	True      = Value{kind: KindBool, b: true}
	False     = Value{kind: KindBool}
)

// Num makes a number value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Str makes a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Boolean makes a bool value.
func Boolean(b bool) Value {
	if b {
		return True
	}
	return False
}

// ObjVal wraps an object.
func ObjVal(o *Object) Value { return Value{kind: KindObject, obj: o} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether the value is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNullish reports whether the value is null or undefined.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// Object returns the underlying object, or nil for non-objects.
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// Truthy applies JavaScript truthiness.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	default:
		return true
	}
}

// Number coerces the value to a number (JS ToNumber semantics, simplified).
func (v Value) Number() float64 {
	switch v.kind {
	case KindNumber:
		return v.num
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindNull:
		return 0
	default:
		return math.NaN()
	}
}

// Text coerces the value to a string (JS ToString, simplified).
func (v Value) Text() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		return formatNumber(v.num)
	case KindString:
		return v.str
	default:
		o := v.obj
		switch {
		case o.Fn != nil:
			name := o.Fn.Name
			if name == "" {
				name = "anonymous"
			}
			return "function " + name
		case o.IsArray:
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if e.IsNullish() {
					parts[i] = ""
				} else {
					parts[i] = e.Text()
				}
			}
			return strings.Join(parts, ",")
		default:
			return "[object Object]"
		}
	}
}

func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func (v Value) String() string { return v.Text() }

// StrictEquals implements ===.
func (v Value) StrictEquals(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindNumber:
		return v.num == o.num
	case KindString:
		return v.str == o.str
	default:
		return v.obj == o.obj
	}
}

// LooseEquals implements == with the coercions that occur in practice.
func (v Value) LooseEquals(o Value) bool {
	if v.kind == o.kind {
		return v.StrictEquals(o)
	}
	if v.IsNullish() && o.IsNullish() {
		return true
	}
	if v.IsNullish() || o.IsNullish() {
		return false
	}
	return v.Number() == o.Number()
}

// HostObject lets Go-side objects (DOM nodes, style proxies, the browser
// window) participate in property access. Get reports ok=false to fall
// through to ordinary properties; Set reports false to store in the ordinary
// property map instead.
type HostObject interface {
	HostGet(name string) (Value, bool)
	HostSet(name string, v Value) bool
}

// Object is the heap value behind objects, arrays, and functions.
type Object struct {
	Props   map[string]Value
	Elems   []Value
	IsArray bool
	Fn      *Function
	Host    HostObject
}

// NewObject returns an empty plain object.
func NewObject() *Object { return &Object{Props: map[string]Value{}} }

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{IsArray: true, Elems: elems, Props: map[string]Value{}}
}

// NewHost returns an object backed by a host implementation.
func NewHost(h HostObject) *Object {
	return &Object{Props: map[string]Value{}, Host: h}
}

// Get reads a property, consulting the host first, then array intrinsics,
// then the property map.
func (o *Object) Get(name string) Value {
	if o.Host != nil {
		if v, ok := o.Host.HostGet(name); ok {
			return v
		}
	}
	if o.IsArray {
		if name == "length" {
			return Num(float64(len(o.Elems)))
		}
		if i, err := strconv.Atoi(name); err == nil {
			if i >= 0 && i < len(o.Elems) {
				return o.Elems[i]
			}
			return Undefined
		}
	}
	if v, ok := o.Props[name]; ok {
		return v
	}
	return Undefined
}

// Set writes a property, consulting the host first.
func (o *Object) Set(name string, v Value) {
	if o.Host != nil && o.Host.HostSet(name, v) {
		return
	}
	if o.IsArray {
		if name == "length" {
			n := int(v.Number())
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems = o.Elems[:n]
			return
		}
		if i, err := strconv.Atoi(name); err == nil && i >= 0 {
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems[i] = v
			return
		}
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	o.Props[name] = v
}

// Keys returns the object's own property names, sorted, plus array indexes.
func (o *Object) Keys() []string {
	var ks []string
	if o.IsArray {
		for i := range o.Elems {
			ks = append(ks, strconv.Itoa(i))
		}
	}
	var props []string
	for k := range o.Props {
		props = append(props, k)
	}
	sort.Strings(props)
	return append(ks, props...)
}

// Function is a callable: either interpreted (Params/Body/Env) or native.
type Function struct {
	Name   string
	Params []string
	Body   []Stmt
	Env    *Env
	Native func(in *Interp, this Value, args []Value) (Value, error)
}

// NativeFunc wraps a Go function as a callable value.
func NativeFunc(name string, fn func(in *Interp, this Value, args []Value) (Value, error)) Value {
	return ObjVal(&Object{Props: map[string]Value{}, Fn: &Function{Name: name, Native: fn}})
}

// Env is a lexical scope frame.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a scope nested in parent (which may be nil for globals).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Lookup finds a variable, walking outward.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Undefined, false
}

// Define creates or overwrites a variable in this scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Assign sets an existing variable in the nearest scope defining it; if none
// does, it defines a global (sloppy-mode JavaScript behaviour).
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.vars[name] = v // implicit global
			return
		}
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.obj != nil && v.obj.Fn != nil {
			return "function"
		}
		return "object"
	}
}

// GoString renders a value for diagnostics (console.log formatting).
func GoString(v Value) string {
	switch v.kind {
	case KindString:
		return v.str
	case KindObject:
		o := v.obj
		if o.Fn != nil {
			return v.Text()
		}
		if o.IsArray {
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				parts[i] = GoString(e)
			}
			return "[" + strings.Join(parts, ", ") + "]"
		}
		var parts []string
		for _, k := range o.Keys() {
			parts = append(parts, fmt.Sprintf("%s: %s", k, GoString(o.Props[k])))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return v.Text()
	}
}
