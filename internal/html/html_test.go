package html

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/wattwiseweb/greenweb/internal/dom"
)

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	z := NewTokenizer(src)
	var out []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokenizeSimple(t *testing.T) {
	toks := tokens(t, `<div id="a" class='b c'>hi</div>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Tag != "div" {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if v, ok := toks[0].Attr("id"); !ok || v != "a" {
		t.Fatalf("id attr = %q, %v", v, ok)
	}
	if v, _ := toks[0].Attr("class"); v != "b c" {
		t.Fatalf("class attr = %q", v)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "div" {
		t.Fatalf("token 2 = %+v", toks[2])
	}
}

func TestTokenizeUnquotedAndBoolean(t *testing.T) {
	toks := tokens(t, `<input type=text disabled>`)
	if toks[0].Type != StartTagToken {
		t.Fatalf("type = %v", toks[0].Type)
	}
	if v, _ := toks[0].Attr("type"); v != "text" {
		t.Fatalf("type attr = %q", v)
	}
	if _, ok := toks[0].Attr("disabled"); !ok {
		t.Fatal("boolean attr missing")
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := tokens(t, `<br/><img src="x.png" />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Tag != "br" {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Tag != "img" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := tokens(t, `<!DOCTYPE html><!-- note -->x`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if toks[1].Type != CommentToken || toks[1].Data != " note " {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[2].Type != TextToken || toks[2].Data != "x" {
		t.Fatalf("token 2 = %+v", toks[2])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	// Raw text runs to the first literal close tag; engines behave the
	// same way, which is why inline scripts avoid "</script>" literals.
	toks := tokens(t, `<script>if (a < b) { f(); }</script>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Data != "if (a < b) { f(); }" {
		t.Fatalf("script body = %q", toks[1].Data)
	}
}

func TestTokenizeEmptyScript(t *testing.T) {
	toks := tokens(t, `<script></script><p>x</p>`)
	if len(toks) != 5 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Type != EndTagToken || toks[1].Tag != "script" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
}

func TestTokenizeStrayLessThan(t *testing.T) {
	toks := tokens(t, `a < b`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type != TextToken {
			t.Fatalf("unexpected token %+v", tok)
		}
		text.WriteString(tok.Data)
	}
	if text.String() != "a < b" {
		t.Fatalf("text = %q", text.String())
	}
}

func TestUnescape(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":      "a & b",
		"&lt;div&gt;":    "<div>",
		"&quot;x&quot;":  `"x"`,
		"&#65;&#x42;":    "AB",
		"&unknown; &":    "&unknown; &",
		"no entities":    "no entities",
		"&apos;&nbsp;":   "'\u00a0",
		"&#xZZ; literal": "&#xZZ; literal",
	}
	for in, want := range cases {
		if got := Unescape(in); got != want {
			t.Errorf("Unescape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	s := `<a href="x">&`
	if got := Unescape(Escape(s)); got != s {
		t.Fatalf("round trip = %q", got)
	}
}

func TestParseTree(t *testing.T) {
	doc := Parse(`<html><body><div id="main"><p>one</p><p>two</p></div></body></html>`)
	main := doc.GetElementByID("main")
	if main == nil {
		t.Fatal("no #main")
	}
	ps := doc.GetElementsByTag("p")
	if len(ps) != 2 {
		t.Fatalf("p count = %d", len(ps))
	}
	if ps[0].TextContent() != "one" || ps[1].TextContent() != "two" {
		t.Fatal("text content wrong")
	}
	if ps[0].Parent != main {
		t.Fatal("structure wrong")
	}
}

func TestParseSkipsWhitespaceText(t *testing.T) {
	doc := Parse("<div>\n  <p>x</p>\n</div>")
	div := doc.GetElementsByTag("div")[0]
	if len(div.Children) != 1 {
		t.Fatalf("div has %d children, want 1", len(div.Children))
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><br><img src="a"><p>after</p></div>`)
	div := doc.GetElementsByTag("div")[0]
	if len(div.Children) != 3 {
		t.Fatalf("div children = %d, want 3 (br, img, p siblings)", len(div.Children))
	}
}

func TestParseRecoversFromUnmatchedEndTag(t *testing.T) {
	doc := Parse(`<div></span><p>x</p></div>`)
	if len(doc.GetElementsByTag("p")) != 1 {
		t.Fatal("p lost after bogus end tag")
	}
	p := doc.GetElementsByTag("p")[0]
	if p.Parent.Tag != "div" {
		t.Fatalf("p parent = %v", p.Parent)
	}
}

func TestParseClosesUnclosedAtEOF(t *testing.T) {
	doc := Parse(`<div><p>unclosed`)
	if got := doc.GetElementsByTag("p")[0].TextContent(); got != "unclosed" {
		t.Fatalf("text = %q", got)
	}
}

func TestScriptAndStyleSources(t *testing.T) {
	doc := Parse(`<html><head><style>p { color: red; }</style></head>
		<body><script>var x = 1;</script><script>  </script></body></html>`)
	ss := ScriptSources(doc)
	if len(ss) != 1 || ss[0] != "var x = 1;" {
		t.Fatalf("scripts = %q", ss)
	}
	cs := StyleSources(doc)
	if len(cs) != 1 || cs[0] != "p { color: red; }" {
		t.Fatalf("styles = %q", cs)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<html><body><div class="a" id="m"><p>hi &amp; bye</p><br></div></body></html>`
	doc := Parse(src)
	out := Render(doc)
	doc2 := Parse(out)
	// Semantic equivalence: same element structure and text.
	if doc.CountNodes() != doc2.CountNodes() {
		t.Fatalf("node count changed: %d → %d\n%s", doc.CountNodes(), doc2.CountNodes(), out)
	}
	if doc2.GetElementByID("m") == nil {
		t.Fatal("id lost in round trip")
	}
	if doc2.GetElementsByTag("p")[0].TextContent() != "hi & bye" {
		t.Fatalf("text mangled: %q", doc2.GetElementsByTag("p")[0].TextContent())
	}
}

func TestRenderScriptNotEscaped(t *testing.T) {
	src := `<body><script>if (a < 2) { b = a && c; }</script></body>`
	doc := Parse(src)
	out := Render(doc)
	if !strings.Contains(out, "if (a < 2) { b = a && c; }") {
		t.Fatalf("script body escaped: %s", out)
	}
	// And it must survive a second parse.
	doc2 := Parse(out)
	if ScriptSources(doc2)[0] != "if (a < 2) { b = a && c; }" {
		t.Fatalf("script lost: %q", ScriptSources(doc2))
	}
}

func TestTokenTypeStrings(t *testing.T) {
	for tt, want := range map[TokenType]string{
		TextToken: "text", StartTagToken: "start-tag", EndTagToken: "end-tag",
		SelfClosingTagToken: "self-closing-tag", CommentToken: "comment", DoctypeToken: "doctype",
	} {
		if tt.String() != want {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), want)
		}
	}
}

// Property: parsing never panics and always yields a tree whose parent
// pointers are consistent, for arbitrary input.
func TestPropertyParseTotalFunction(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		ok := true
		doc.Root.Walk(func(n *dom.Node) {
			for _, c := range n.Children {
				if c.Parent != n {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: render→parse→render reaches a fixed point (idempotent
// serialization) for documents built from parsing arbitrary tag soup.
func TestPropertyRenderFixedPoint(t *testing.T) {
	f := func(s string) bool {
		r1 := Render(Parse(s))
		r2 := Render(Parse(r1))
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
