package html

import "testing"

// FuzzParse drives the HTML parser with arbitrary bytes: it must never
// panic, and rendering what it parsed must reach a serialization fixed
// point (run with `go test -fuzz=FuzzParse ./internal/html`).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>x</p></body></html>",
		"<div id=a class='b c'><br><img src=x></div>",
		"<script>if (a < b) { x = 1; }</script>",
		"<!DOCTYPE html><!-- c --><p>&amp;&#65;</p>",
		"<div><p>unclosed",
		"</stray><<<>>",
		"<style>p { color: red; }</style>",
		"<a href=\"x\">&unknown;</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil {
			t.Fatal("nil document")
		}
		r1 := Render(doc)
		r2 := Render(Parse(r1))
		if r1 != r2 {
			t.Fatalf("render not a fixed point:\n%q\n%q", r1, r2)
		}
	})
}
