package html

import (
	"strings"

	"github.com/wattwiseweb/greenweb/internal/dom"
)

// voidTags never have children; a start tag closes immediately.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse builds a DOM document from HTML source. It never fails: malformed
// markup is repaired the way engines repair it (unmatched end tags are
// dropped, unclosed elements are closed at end of input).
func Parse(src string) *dom.Document {
	doc := dom.NewDocument()
	z := NewTokenizer(src)

	stack := []*dom.Node{doc.Root}
	top := func() *dom.Node { return stack[len(stack)-1] }

	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			// Whitespace-only text between elements is layout-irrelevant
			// noise; keep text that has content.
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().AppendChild(doc.NewText(tok.Data))

		case CommentToken, DoctypeToken:
			// Dropped: neither affects rendering or QoS semantics.

		case StartTagToken, SelfClosingTagToken:
			el := doc.NewElement(tok.Tag)
			top().AppendChild(el)
			for _, a := range tok.Attrs {
				el.SetAttr(a.Name, a.Value)
			}
			if tok.Type == StartTagToken && !voidTags[tok.Tag] {
				stack = append(stack, el)
			}

		case EndTagToken:
			// Pop to the nearest matching open element; ignore the end tag
			// if nothing matches (engine-style recovery).
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// ScriptSources returns the text content of every <script> element in
// document order. The browser feeds these to the script engine on load.
func ScriptSources(doc *dom.Document) []string {
	var out []string
	for _, s := range doc.GetElementsByTag("script") {
		if txt := s.TextContent(); strings.TrimSpace(txt) != "" {
			out = append(out, txt)
		}
	}
	return out
}

// StyleSources returns the text content of every <style> element in
// document order. The browser feeds these to the CSS engine on load.
func StyleSources(doc *dom.Document) []string {
	var out []string
	for _, s := range doc.GetElementsByTag("style") {
		if txt := s.TextContent(); strings.TrimSpace(txt) != "" {
			out = append(out, txt)
		}
	}
	return out
}

// Render serializes a DOM tree back to HTML. Round-tripping a parsed
// document yields equivalent markup (attribute order is normalized).
// AUTOGREEN uses this to write annotated documents back out.
func Render(doc *dom.Document) string {
	var b strings.Builder
	for _, c := range doc.Root.Children {
		renderNode(&b, c, 0)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *dom.Node, depth int) {
	switch n.Type {
	case dom.TextNode:
		if rawParent(n) {
			b.WriteString(n.Text)
		} else {
			b.WriteString(Escape(n.Text))
		}
	case dom.ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, name := range n.AttrNames() {
			v, _ := n.Attr(name)
			b.WriteByte(' ')
			b.WriteString(name)
			b.WriteString(`="`)
			b.WriteString(Escape(v))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidTags[n.Tag] {
			return
		}
		for _, c := range n.Children {
			renderNode(b, c, depth+1)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

func rawParent(n *dom.Node) bool {
	return n.Parent != nil && rawTextTags[n.Parent.Tag]
}
