// Package html parses HTML documents into DOM trees.
//
// The parser covers the HTML features GreenWeb applications use: nested
// elements with quoted/unquoted attributes, void and self-closing elements,
// comments, character entities, and raw-text handling for <script> and
// <style> so embedded code reaches the script and CSS front ends verbatim.
// It is a pragmatic engine-style parser rather than a full WHATWG
// implementation: malformed input degrades gracefully instead of erroring,
// because real webpages are malformed.
package html

import (
	"strings"
	"unicode"
)

// TokenType identifies a lexical token in the HTML stream.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <tag attr="v">.
	StartTagToken
	// EndTagToken is </tag>.
	EndTagToken
	// SelfClosingTagToken is <tag/>.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start-tag"
	case EndTagToken:
		return "end-tag"
	case SelfClosingTagToken:
		return "self-closing-tag"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	default:
		return "unknown"
	}
}

// Attr is one parsed attribute.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical unit of the HTML stream.
type Token struct {
	Type  TokenType
	Tag   string // lower-cased tag name for tag tokens
	Data  string // text content, comment body, or doctype body
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextTags capture their content verbatim until the matching close tag.
var rawTextTags = map[string]bool{"script": true, "style": true}

// Tokenizer splits an HTML source into tokens.
type Tokenizer struct {
	src string
	pos int
	// pending raw-text element whose content should be consumed verbatim
	rawTag string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token, or ok=false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.rawTag != "" {
		return z.rawText()
	}
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

func (z *Tokenizer) text() (Token, bool) {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: Unescape(z.src[start:z.pos])}, true
}

// rawText consumes everything up to the close tag of the pending raw-text
// element (e.g. </script>), without entity decoding.
func (z *Tokenizer) rawText() (Token, bool) {
	close := "</" + z.rawTag
	z.rawTag = ""
	// A byte-offset-safe case-insensitive search: lowering the whole
	// suffix would replace invalid UTF-8 with U+FFFD and shift offsets.
	idx := indexASCIIFold(z.src[z.pos:], close)
	if idx < 0 {
		data := z.src[z.pos:]
		z.pos = len(z.src)
		if data == "" {
			return z.Next()
		}
		return Token{Type: TextToken, Data: data}, true
	}
	data := z.src[z.pos : z.pos+idx]
	z.pos += idx
	if data == "" {
		// Nothing between open and close: deliver the close tag instead.
		return z.tag()
	}
	return Token{Type: TextToken, Data: data}, true
}

// indexASCIIFold returns the byte offset of the first ASCII-case-
// insensitive occurrence of pat (which must be lower-case ASCII) in s,
// or -1. Byte offsets are preserved regardless of s's encoding.
func indexASCIIFold(s, pat string) int {
	if len(pat) == 0 {
		return 0
	}
	for i := 0; i+len(pat) <= len(s); i++ {
		match := true
		for j := 0; j < len(pat); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != pat[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

func (z *Tokenizer) tag() (Token, bool) {
	// z.src[z.pos] == '<'
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		end := strings.Index(z.src[z.pos+4:], "-->")
		var body string
		if end < 0 {
			body = z.src[z.pos+4:]
			z.pos = len(z.src)
		} else {
			body = z.src[z.pos+4 : z.pos+4+end]
			z.pos += 4 + end + 3
		}
		return Token{Type: CommentToken, Data: body}, true
	}
	if len(z.src[z.pos:]) >= 2 && z.src[z.pos+1] == '!' {
		// <!DOCTYPE ...> or other declaration.
		end := strings.IndexByte(z.src[z.pos:], '>')
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: DoctypeToken}, true
		}
		body := z.src[z.pos+2 : z.pos+end]
		z.pos += end + 1
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(body)}, true
	}

	closing := false
	p := z.pos + 1
	if p < len(z.src) && z.src[p] == '/' {
		closing = true
		p++
	}
	// A '<' not followed by a name is literal text.
	if p >= len(z.src) || !isNameStart(z.src[p]) {
		z.pos++
		return Token{Type: TextToken, Data: "<"}, true
	}
	nameStart := p
	for p < len(z.src) && isNameChar(z.src[p]) {
		p++
	}
	name := strings.ToLower(z.src[nameStart:p])

	tok := Token{Tag: name}
	if closing {
		tok.Type = EndTagToken
		// Skip to '>'.
		for p < len(z.src) && z.src[p] != '>' {
			p++
		}
		if p < len(z.src) {
			p++
		}
		z.pos = p
		return tok, true
	}

	// Parse attributes.
	for {
		for p < len(z.src) && isSpace(z.src[p]) {
			p++
		}
		if p >= len(z.src) {
			break
		}
		if z.src[p] == '>' {
			p++
			tok.Type = StartTagToken
			break
		}
		if strings.HasPrefix(z.src[p:], "/>") {
			p += 2
			tok.Type = SelfClosingTagToken
			break
		}
		aStart := p
		for p < len(z.src) && !isSpace(z.src[p]) && z.src[p] != '=' && z.src[p] != '>' && !strings.HasPrefix(z.src[p:], "/>") {
			p++
		}
		aName := strings.ToLower(z.src[aStart:p])
		if aName == "" {
			p++ // stray character; skip to avoid an infinite loop
			continue
		}
		for p < len(z.src) && isSpace(z.src[p]) {
			p++
		}
		var aVal string
		if p < len(z.src) && z.src[p] == '=' {
			p++
			for p < len(z.src) && isSpace(z.src[p]) {
				p++
			}
			if p < len(z.src) && (z.src[p] == '"' || z.src[p] == '\'') {
				q := z.src[p]
				p++
				vStart := p
				for p < len(z.src) && z.src[p] != q {
					p++
				}
				aVal = Unescape(z.src[vStart:p])
				if p < len(z.src) {
					p++
				}
			} else {
				vStart := p
				for p < len(z.src) && !isSpace(z.src[p]) && z.src[p] != '>' {
					p++
				}
				aVal = Unescape(z.src[vStart:p])
			}
		}
		tok.Attrs = append(tok.Attrs, Attr{Name: aName, Value: aVal})
	}
	if tok.Type != StartTagToken && tok.Type != SelfClosingTagToken {
		tok.Type = StartTagToken // unterminated tag at EOF
	}
	z.pos = p
	if tok.Type == StartTagToken && rawTextTags[name] {
		z.rawTag = name
	}
	return tok, true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' }

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

var entities = map[string]string{
	"amp":  "&",
	"lt":   "<",
	"gt":   ">",
	"quot": `"`,
	"apos": "'",
	"nbsp": "\u00a0",
}

// Unescape decodes the named and numeric character entities that occur in
// practice. Unknown entities pass through unchanged.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if rep, ok := entities[name]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(name, "#") {
			num := name[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				base = 16
				num = num[1:]
			}
			var r rune
			ok := len(num) > 0
			for _, d := range num {
				var v rune
				switch {
				case d >= '0' && d <= '9':
					v = d - '0'
				case base == 16 && d >= 'a' && d <= 'f':
					v = d - 'a' + 10
				case base == 16 && d >= 'A' && d <= 'F':
					v = d - 'A' + 10
				default:
					ok = false
				}
				if !ok {
					break
				}
				r = r*rune(base) + v
			}
			if ok && unicode.IsGraphic(r) {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// Escape encodes text for safe embedding in HTML content.
func Escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
