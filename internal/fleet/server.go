package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// SweepRequest is the POST /v1/sweeps body. Empty fields take defaults:
// every Table 3 application, the paper's two baselines plus both GreenWeb
// scenarios, and the full-interaction phase.
type SweepRequest struct {
	Apps    []string `json:"apps,omitempty"`
	Kinds   []string `json:"kinds,omitempty"`
	Phase   string   `json:"phase,omitempty"`
	Repeats int      `json:"repeats,omitempty"`
	// Faults optionally runs every cell of the sweep on a faulted device
	// (see faults.Spec). Invalid specs answer 400 before any job runs.
	Faults *faults.Spec `json:"faults,omitempty"`
	// StageWorkers adds a render-pipeline dimension to the grid: the sweep
	// runs every (app, kind) cell once per listed stage-worker count
	// (0 = process default, 1 = serial, 2.. = staged). Empty keeps the grid
	// two-dimensional, exactly as before the dimension existed.
	StageWorkers []int `json:"stage_workers,omitempty"`
}

// DefaultKinds is the sweep the evaluation section revolves around.
var DefaultKinds = []harness.Kind{harness.Perf, harness.Interactive, harness.GreenWebI, harness.GreenWebU}

// Jobs expands the request into the job grid (apps × kinds). Request-level
// fields are validated before grid expansion, so a bad phase or repeat count
// fails once with a request-shaped error instead of per generated job.
func (r SweepRequest) Jobs() ([]Job, error) {
	if r.Repeats < 0 {
		return nil, fmt.Errorf("fleet: negative repeats %d", r.Repeats)
	}
	if err := r.Faults.Validate(); err != nil {
		return nil, err
	}
	phase := Full
	if r.Phase != "" {
		// Case-insensitive, matching harness.ParseKind for governor kinds.
		phase = Phase(strings.ToLower(r.Phase))
		switch phase {
		case Micro, Full:
		default:
			return nil, fmt.Errorf("fleet: unknown phase %q (want %q or %q)", r.Phase, Micro, Full)
		}
	}
	names := r.Apps
	if len(names) == 0 {
		names = apps.Names()
	}
	kinds := DefaultKinds
	if len(r.Kinds) > 0 {
		kinds = make([]harness.Kind, 0, len(r.Kinds))
		for _, k := range r.Kinds {
			kind, err := harness.ParseKind(k)
			if err != nil {
				return nil, err
			}
			kinds = append(kinds, kind)
		}
	}
	stageWorkers := r.StageWorkers
	if len(stageWorkers) == 0 {
		stageWorkers = []int{0}
	}
	for _, n := range stageWorkers {
		if !harness.ValidStageWorkers(n) {
			return nil, fmt.Errorf("fleet: stage workers %d out of range", n)
		}
	}
	var jobs []Job
	for _, name := range names {
		for _, kind := range kinds {
			for _, n := range stageWorkers {
				j := Job{App: name, Kind: kind, Phase: phase, Repeats: r.Repeats,
					Faults: r.Faults, StageWorkers: n}
				if err := j.Validate(); err != nil {
					return nil, err
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs, nil
}

// ResultRow is the NDJSON wire form of one finished job, streamed by
// GET /v1/sweeps/{id}/results in submission order.
type ResultRow struct {
	Index        int          `json:"index"`
	App          string       `json:"app"`
	Kind         harness.Kind `json:"kind"`
	Phase        Phase        `json:"phase"`
	State        State        `json:"state"`
	// StageWorkers echoes the job's render-pipeline override; omitted for
	// default-pipeline jobs so pre-existing sweep output is unchanged.
	StageWorkers int `json:"stage_workers,omitempty"`
	LatencyMS    float64      `json:"latency_ms"`
	EnergyJ      float64      `json:"energy_j,omitempty"`
	Frames       int          `json:"frames,omitempty"`
	ViolationI   float64      `json:"violation_i,omitempty"`
	ViolationU   float64      `json:"violation_u,omitempty"`
	LoadMS       float64      `json:"load_latency_ms,omitempty"`
	FreqSwitches int          `json:"freq_switches,omitempty"`
	Migrations   int          `json:"migrations,omitempty"`
	// Ledger attribution columns (whole run including load): frame + idle
	// partition the meter integral; event sums the input→completion
	// overlays.
	FrameEnergyJ float64 `json:"frame_energy_j,omitempty"`
	IdleEnergyJ  float64 `json:"idle_energy_j,omitempty"`
	EventEnergyJ float64 `json:"event_energy_j,omitempty"`
	// StageEnergyJ sums the per-stage overlay spans of staged frame
	// production; zero (and omitted) on serial-pipeline jobs.
	StageEnergyJ float64 `json:"stage_energy_j,omitempty"`
	// Retry provenance: executions consumed (only when >1) and each failed
	// attempt's error. A quarantined row is a failure that exhausted every
	// allowed attempt. All omitted for clean first-try rows, so unfaulted
	// sweeps stay byte-identical to pre-retry output.
	Attempts      int      `json:"attempts,omitempty"`
	AttemptErrors []string `json:"attempt_errors,omitempty"`
	Quarantined   bool     `json:"quarantined,omitempty"`
	// Fault-adversity columns (zero, and omitted, on pristine hardware).
	ThermalTrips int `json:"thermal_trips,omitempty"`
	DVFSDenied   int `json:"dvfs_denied,omitempty"`
	DVFSDelayed  int `json:"dvfs_delayed,omitempty"`
	DAQDropped   int `json:"daq_dropped,omitempty"`
	CapClamps    int `json:"cap_clamps,omitempty"`
	Degradations int `json:"degradations,omitempty"`
	Recoveries   int `json:"recoveries,omitempty"`
	Error        string `json:"error,omitempty"`
}

func rowOf(index int, r Result) ResultRow {
	row := ResultRow{
		Index:     index,
		App:       r.Job.App,
		Kind:      r.Job.Kind,
		Phase:     r.Job.Phase,
		State:     r.State(),
		LatencyMS: float64(r.Latency) / float64(time.Millisecond),
	}
	row.StageWorkers = r.Job.StageWorkers
	if r.Attempts > 1 {
		row.Attempts = r.Attempts
		row.AttemptErrors = r.History
	}
	row.Quarantined = r.Quarantined
	if r.Err != nil {
		row.Error = r.Err.Error()
		return row
	}
	run := r.Run
	row.EnergyJ = float64(run.Energy)
	row.Frames = run.Frames
	row.ViolationI = run.ViolationI
	row.ViolationU = run.ViolationU
	row.LoadMS = run.LoadLatency.Milliseconds()
	row.FreqSwitches = run.Switches.FreqSwitches
	row.Migrations = run.Switches.Migrations
	row.FrameEnergyJ = float64(run.FrameEnergy)
	row.IdleEnergyJ = float64(run.IdleEnergy)
	row.EventEnergyJ = float64(run.EventEnergy)
	row.StageEnergyJ = float64(run.StageEnergy)
	row.ThermalTrips = run.ThermalTrips
	row.DVFSDenied = run.DVFSDenied
	row.DVFSDelayed = run.DVFSDelayed
	row.DAQDropped = run.DAQDropped
	row.CapClamps = run.CapClamps
	row.Degradations = run.Degradations
	row.Recoveries = run.Recoveries
	return row
}

// WriteResults renders a finished sweep's results as NDJSON — byte-for-byte
// the rows greensrv streams. deterministic zeroes the wall-clock latency
// column, so two runs of an identical sweep (same jobs, same fault seeds)
// produce byte-identical output; the CI determinism job diffs exactly this.
func WriteResults(w io.Writer, results []Result, deterministic bool) error {
	enc := json.NewEncoder(w)
	for i, r := range results {
		row := rowOf(i, r)
		if deterministic {
			row.LatencyMS = 0
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// maxSweepRequestBytes bounds the POST /v1/sweeps body. The largest
// legitimate request — every app, every kind, a fault spec — is a few
// kilobytes; 1 MiB leaves two orders of magnitude of headroom while keeping
// a hostile or misconfigured client from buffering arbitrary payloads.
const maxSweepRequestBytes = 1 << 20

// Server is the greensrv HTTP API over a manager:
//
//	POST /v1/sweeps              enqueue a sweep (202 + id; 503 while draining)
//	GET  /v1/sweeps/{id}         status snapshot
//	GET  /v1/sweeps/{id}/results NDJSON rows, streamed as jobs finish
//	                             (?deterministic=1 zeroes latency_ms for
//	                             byte-comparable streams across topologies)
//	GET  /v1/sweeps/{id}/events  NDJSON per-frame decision log, streamed per job
//	GET  /v1/sweeps/{id}/trace   Chrome trace-event JSON of the whole sweep
//	                             (?fleet=1 serves the distributed fleet trace:
//	                             admission/queue/steal/re-home/retry/execute
//	                             spans merged across server and worker
//	                             processes, clock-aligned)
//	GET  /v1/nodes               per-node liveness, heartbeat RTT, queue depth,
//	                             and span-drop federation
//	GET  /healthz                liveness (503 while draining)
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/pprof/           net/http/pprof profiles
//
// Method mismatches answer 405 (ServeMux method patterns); unknown sweep
// IDs answer 404. Trace and event endpoints on a WAL-replayed sweep answer
// 404 with a machine-parsable body {"error":..., "code":"replayed_no_trace"}
// — the replayed store keeps result rows, not the observability overlay.
type Server struct {
	m        *Manager
	mux      *http.ServeMux
	reg      *obs.Registry
	draining atomic.Bool
	adm      atomic.Pointer[admission]
}

// ConfigureAdmission (re)arms admission control on POST /v1/sweeps:
// queue-depth-aware shedding and per-client token buckets, both answering
// 429 with a rejection body and Retry-After. Safe to call at any time; a
// zero options value disables both gates.
func (s *Server) ConfigureAdmission(opts AdmissionOptions) {
	s.adm.Store(newAdmission(opts))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain flips the server into draining mode: new sweep submissions
// answer 503 (with Retry-After) and healthz reports draining, while reads —
// status, results, events, metrics — keep working so clients can collect
// what is already in flight. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry returns the server's own metric registry (fleet pool and sweep
// gauges); /metrics merges it with obs.Default().
func (s *Server) Registry() *obs.Registry { return s.reg }

// eventRow is one NDJSON line of GET /v1/sweeps/{id}/events: the job's
// coordinates plus the embedded per-frame decision.
type eventRow struct {
	Index int          `json:"index"`
	App   string       `json:"app"`
	Kind  harness.Kind `json:"kind"`
	obs.Decision
}

// NewServer builds the HTTP API (see Server for the route table).
func NewServer(m *Manager) *Server {
	srv := &Server{m: m, mux: http.NewServeMux(), reg: obs.NewRegistry()}
	m.Runner().RegisterMetrics(srv.reg)
	if st := m.Store(); st != nil {
		st.RegisterMetrics(srv.reg)
	}
	srv.reg.CounterFunc("greenweb_fleet_sweeps_total",
		"Sweeps ever registered", func() float64 { t, _ := m.Counts(); return float64(t) })
	srv.reg.CounterFunc("greenweb_fleet_sweeps_finished_total",
		"Sweeps whose every job reached a terminal state", func() float64 { _, f := m.Counts(); return float64(f) })
	mux := srv.mux

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if srv.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteAll(w, srv.reg, obs.Default())
	})

	// Profiling endpoints. pprof.Index dispatches /debug/pprof/<name> to the
	// named runtime profile (heap, goroutine, block, ...) itself.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		queued := m.Runner().Stats().Queued
		if srv.draining.Load() {
			writeRejection(w, http.StatusServiceUnavailable, &rejection{
				Error:        "server is draining; not accepting new sweeps",
				Code:         CodeDraining,
				RetryAfterMS: 10_000,
				QueueDepth:   queued,
			})
			return
		}
		if adm := srv.adm.Load(); adm != nil {
			if rej := adm.admit(clientKey(r), queued); rej != nil {
				writeRejection(w, http.StatusTooManyRequests, rej)
				return
			}
		}
		// Reject non-JSON payloads up front (415) and bound the body (400 on
		// overflow): a sweep request is a small job grid, never megabytes.
		if ct := r.Header.Get("Content-Type"); ct != "" {
			mt, _, _ := strings.Cut(ct, ";")
			if !strings.EqualFold(strings.TrimSpace(mt), "application/json") {
				httpError(w, http.StatusUnsupportedMediaType,
					fmt.Errorf("content type %q not supported; use application/json", ct))
				return
			}
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxSweepRequestBytes)
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		jobs, err := req.Jobs()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		admitted := time.Now()
		s, err := m.Enqueue(jobs)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Sweep-level admission span (job -1 → the trace's "sweep" lane):
		// the HTTP-side cost of validating and registering the sweep.
		if tr, ok := m.Traces().Get(string(s.ID)); ok {
			tr.Record(-1, 0, "admission", "admission", admitted, time.Since(admitted),
				map[string]string{"jobs": fmt.Sprintf("%d", s.Len()), "client": clientKey(r)})
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id":          s.ID,
			"jobs":        s.Len(),
			"status_url":  fmt.Sprintf("/v1/sweeps/%s", s.ID),
			"results_url": fmt.Sprintf("/v1/sweeps/%s/results", s.ID),
		})
	})

	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := SweepID(r.PathValue("id"))
		s, ok := m.Get(id)
		if !ok {
			// A sweep from before this process's lifetime replays from the
			// durable store.
			if st, stored := m.StoredStatus(id); stored {
				writeJSON(w, http.StatusOK, st)
				return
			}
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		id := SweepID(r.PathValue("id"))
		// ?deterministic=1 zeroes the wall-clock latency column — the only
		// nondeterministic byte in a row — so streams from different
		// topologies (node counts, remote workers, mid-sweep failures) can be
		// compared byte-for-byte. The CI chaos smoke diffs exactly this.
		deterministic := r.URL.Query().Get("deterministic") == "1"
		s, ok := m.Get(id)
		if !ok {
			// Replay the persisted NDJSON byte-for-byte from the store.
			if rows, stored := m.StoredRows(id); stored {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				if !deterministic {
					for _, row := range rows {
						w.Write(row)
						io.WriteString(w, "\n")
					}
					return
				}
				// Persisted rows were encoded from ResultRow, so decode,
				// zero, re-encode reproduces the live deterministic bytes.
				enc := json.NewEncoder(w)
				for _, raw := range rows {
					var row ResultRow
					if err := json.Unmarshal(raw, &row); err != nil {
						return
					}
					row.LatencyMS = 0
					if err := enc.Encode(row); err != nil {
						return
					}
				}
				return
			}
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		// Submission order: row i is not emitted before rows 0..i-1, so
		// the stream is the sweep's deterministic merge.
		for i := 0; i < s.Len(); i++ {
			res, err := s.Result(r.Context(), i)
			if err != nil {
				return // client went away
			}
			row := rowOf(i, res)
			if deterministic {
				row.LatencyMS = 0
			}
			if err := enc.Encode(row); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(SweepID(r.PathValue("id")))
		if !ok {
			if _, stored := m.StoredRows(SweepID(r.PathValue("id"))); stored {
				httpErrorCode(w, http.StatusNotFound, CodeReplayedNoTrace, fmt.Errorf(
					"sweep %q was replayed from the store; decision events are not persisted", r.PathValue("id")))
				return
			}
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		// Per-job decision logs in submission order, each flushed as its job
		// finishes. Failed jobs (and -no-obs runs) contribute no rows.
		for i := 0; i < s.Len(); i++ {
			res, err := s.Result(r.Context(), i)
			if err != nil {
				return // client went away
			}
			if res.Err != nil || res.Run == nil {
				continue
			}
			for _, d := range res.Run.Decisions {
				if err := enc.Encode(eventRow{Index: i, App: res.Job.App, Kind: res.Job.Kind, Decision: d}); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("GET /v1/sweeps/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(SweepID(r.PathValue("id")))
		if !ok {
			if _, stored := m.StoredRows(SweepID(r.PathValue("id"))); stored {
				httpErrorCode(w, http.StatusNotFound, CodeReplayedNoTrace, fmt.Errorf(
					"sweep %q was replayed from the store; trace spans are not persisted", r.PathValue("id")))
				return
			}
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
			return
		}
		// ?fleet=1 serves the distributed trace: the server's merged span
		// buffer (admission, queue-wait, steal, re-home, dispatch) plus
		// every worker's shipped spans, clock-aligned, one Chrome trace
		// process row per real OS process.
		if r.URL.Query().Get("fleet") == "1" {
			tr, ok := m.Traces().Get(string(s.ID))
			if !ok {
				httpErrorCode(w, http.StatusNotFound, CodeNoFleetTrace, fmt.Errorf(
					"sweep %q has no fleet trace (tracing disabled, -no-obs, or the buffer was evicted)", s.ID))
				return
			}
			// Wait for the sweep so the artifact covers every job's spans.
			select {
			case <-s.Done():
			case <-r.Context().Done():
				return
			}
			spans, drops := tr.Snapshot()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			trace.WriteFleetTrace(w, string(s.ID), spans, drops)
			return
		}
		// One trace process per job (pid = index+1), waiting for each result
		// in submission order — the trace covers the finished sweep.
		var procs []ledger.Process
		for i := 0; i < s.Len(); i++ {
			res, err := s.Result(r.Context(), i)
			if err != nil {
				return // client went away
			}
			if res.Err != nil || res.Run == nil {
				continue
			}
			procs = append(procs, ledger.Process{
				PID:   i + 1,
				Name:  fmt.Sprintf("%s/%s/%s", res.Job.App, res.Job.Kind, res.Job.Phase),
				Spans: res.Run.Spans,
				Marks: res.Run.ConfigMarks,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		ledger.WriteTrace(w, procs...)
	})

	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		var infos []NodeInfo
		if nr, ok := m.Runner().(NodeReporter); ok {
			infos = nr.NodeInfos()
		}
		writeJSON(w, http.StatusOK, map[string]any{"nodes": infos})
	})

	return srv
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Machine-parsable error codes for observability endpoints (distinct from
// the admission rejection codes, which carry retry hints).
const (
	// CodeReplayedNoTrace: the sweep exists but was replayed from the WAL,
	// which persists result rows, not the trace/event overlay.
	CodeReplayedNoTrace = "replayed_no_trace"
	// CodeNoFleetTrace: the sweep ran without fleet tracing (disabled, or
	// -no-obs) or its span buffer aged out of the collector.
	CodeNoFleetTrace = "no_fleet_trace"
)

// httpErrorCode is httpError with a stable machine-parsable code field, so
// clients distinguish "replayed, observability gone" from "never existed"
// without parsing prose.
func httpErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}
