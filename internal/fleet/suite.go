package fleet

import (
	"context"

	"github.com/wattwiseweb/greenweb/internal/harness"
)

// SuiteRunner adapts a Pool to harness.Prefetcher: the suite's generators
// hand it their whole cell working set, it fans the cells out as fleet
// jobs, and the results merge back keyed by cell. Each cell executes with
// harness.ExecuteCell semantics on an isolated device, so a fleet-backed
// report is byte-identical to the sequential one.
type SuiteRunner struct {
	ctx  context.Context
	pool *Pool
}

// NewSuiteRunner binds the pool to ctx (cancelling ctx aborts any prefetch
// in flight).
func NewSuiteRunner(ctx context.Context, pool *Pool) *SuiteRunner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &SuiteRunner{ctx: ctx, pool: pool}
}

// Prefetch implements harness.Prefetcher.
func (r *SuiteRunner) Prefetch(cells []harness.Cell) (map[harness.Cell]*harness.Run, error) {
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		phase := Micro
		if c.Full {
			phase = Full
		}
		jobs[i] = Job{App: c.App.Name, Kind: c.Kind, Phase: phase}
	}
	results := r.pool.RunSweep(r.ctx, jobs)
	out := make(map[harness.Cell]*harness.Run, len(cells))
	for i, res := range results {
		if res.Err != nil {
			return nil, res.Err
		}
		out[cells[i]] = res.Run
	}
	return out, nil
}

// NewSuite returns a harness suite whose generators prefetch through the
// pool — the drop-in parallel replacement for harness.NewSuite().
func NewSuite(ctx context.Context, pool *Pool) *harness.Suite {
	s := harness.NewSuite()
	s.SetPrefetcher(NewSuiteRunner(ctx, pool))
	return s
}
