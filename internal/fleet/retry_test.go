package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/harness"
)

// flakyExec fails each job's first failuresPerJob attempts, then succeeds.
func flakyExec(failuresPerJob int) func(context.Context, Job) (*harness.Run, error) {
	var mu sync.Mutex
	attempts := make(map[string]int)
	return func(ctx context.Context, j Job) (*harness.Run, error) {
		mu.Lock()
		attempts[j.App]++
		n := attempts[j.App]
		mu.Unlock()
		if n <= failuresPerJob {
			return nil, fmt.Errorf("transient failure %d of %s", n, j.App)
		}
		return &harness.Run{}, nil
	}
}

func TestRetryRecoversFlakyJob(t *testing.T) {
	p := New(Options{
		Workers: 1, MaxAttempts: 4,
		RetryBaseDelay: time.Millisecond, RetryMaxDelay: 4 * time.Millisecond,
		Execute: flakyExec(2),
	})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "flaky"}})[0]
	if res.Err != nil {
		t.Fatalf("flaky job failed despite retries: %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", res.Attempts)
	}
	if len(res.History) != 2 || !strings.Contains(res.History[0], "transient failure 1") {
		t.Fatalf("history = %v, want the two failed attempts", res.History)
	}
	if res.Quarantined {
		t.Fatal("recovered job marked quarantined")
	}
	st := p.Stats()
	if st.Retried != 2 || st.Quarantined != 0 || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want retried=2 quarantined=0 done=1", st)
	}
}

func TestQuarantineAfterExhaustedAttempts(t *testing.T) {
	p := New(Options{
		Workers: 1, MaxAttempts: 3,
		RetryBaseDelay: time.Millisecond,
		Execute:        flakyExec(1 << 30), // never succeeds
	})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "doomed"}})[0]
	if res.Err == nil || !res.Quarantined {
		t.Fatalf("doomed job: err=%v quarantined=%v, want failure + quarantine", res.Err, res.Quarantined)
	}
	if res.Attempts != 3 || len(res.History) != 3 {
		t.Fatalf("attempts=%d history=%v, want 3 recorded attempts", res.Attempts, res.History)
	}
	if !strings.Contains(res.Err.Error(), "transient failure 3") {
		t.Fatalf("final err = %v, want the last attempt's error", res.Err)
	}
	st := p.Stats()
	if st.Retried != 2 || st.Quarantined != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want retried=2 quarantined=1 failed=1", st)
	}
}

func TestPanickingAttemptIsRetried(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	p := New(Options{
		Workers: 1, MaxAttempts: 2, RetryBaseDelay: time.Millisecond,
		Execute: func(ctx context.Context, j Job) (*harness.Run, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("first attempt crashes")
			}
			return &harness.Run{}, nil
		},
	})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "crashy"}})[0]
	if res.Err != nil {
		t.Fatalf("panicking job not recovered by retry: %v", res.Err)
	}
	if res.Attempts != 2 || len(res.History) != 1 || !strings.Contains(res.History[0], "panicked") {
		t.Fatalf("attempts=%d history=%v, want the recovered panic on record", res.Attempts, res.History)
	}
}

func TestCancelledSweepIsNotQuarantined(t *testing.T) {
	started := make(chan Job, 1)
	release := make(chan struct{})
	defer close(release)
	p := New(Options{
		Workers: 1, MaxAttempts: 5, RetryBaseDelay: time.Millisecond,
		Execute: fakeExec(started, release),
	})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	if err := p.Submit(ctx, Job{App: "hung"}, func(r Result) { done <- r }); err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	res := <-done
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	if res.Quarantined {
		t.Fatal("sweep-level cancellation must not quarantine the job")
	}
	if res.Attempts != 1 {
		t.Fatalf("cancelled job retried %d times; cancellation must stop the ladder", res.Attempts-1)
	}
	if st := p.Stats(); st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want no quarantines", st)
	}
}

func TestBackoffDeterministicCappedAndJittered(t *testing.T) {
	p := New(Options{Workers: 1, RetryBaseDelay: 10 * time.Millisecond,
		RetryMaxDelay: 80 * time.Millisecond, RetrySeed: 42,
		Execute: flakyExec(0)})
	defer p.Close()
	job := Job{App: "a", Kind: harness.Perf, Phase: Full}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.backoff(job, attempt)
		d2 := p.backoff(job, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		// Nominal delay doubles per attempt, capped at the max; jitter keeps
		// the realized delay within ±25% of nominal.
		nominal := 10 * time.Millisecond << (attempt - 1)
		if nominal > 80*time.Millisecond {
			nominal = 80 * time.Millisecond
		}
		lo, hi := nominal*3/4, nominal*5/4
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// Different jobs de-synchronize.
	if p.backoff(job, 1) == p.backoff(Job{App: "b", Kind: harness.Perf, Phase: Full}, 1) {
		t.Fatal("distinct jobs share a backoff; jitter is not job-keyed")
	}
}

// TestSweepNDJSONDeterministicWithRetries: the deterministic NDJSON render
// of a sweep containing a quarantined job is byte-identical across two fresh
// pools — retry provenance (attempt count, per-attempt errors) included.
func TestSweepNDJSONDeterministicWithRetries(t *testing.T) {
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		if j.App == "doomed" {
			return nil, fmt.Errorf("%w (simulated)", faults.ErrStorm)
		}
		return &harness.Run{}, nil
	}
	jobs := []Job{{App: "ok1"}, {App: "doomed"}, {App: "ok2"}}
	render := func() string {
		p := New(Options{Workers: 3, MaxAttempts: 3, RetryBaseDelay: time.Millisecond, Execute: exec})
		defer p.Close()
		var buf bytes.Buffer
		if err := WriteResults(&buf, p.RunSweep(context.Background(), jobs), true); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("deterministic NDJSON diverged across runs:\n%s\nvs\n%s", a, b)
	}

	// Row 1 carries the full retry provenance.
	rows := strings.Split(strings.TrimSpace(a), "\n")
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	var doomed ResultRow
	if err := json.Unmarshal([]byte(rows[1]), &doomed); err != nil {
		t.Fatal(err)
	}
	if doomed.Attempts != 3 || !doomed.Quarantined || len(doomed.AttemptErrors) != 3 {
		t.Fatalf("doomed row = %+v, want attempts=3 quarantined attempt_errors×3", doomed)
	}
	if !strings.Contains(doomed.Error, "fault storm") {
		t.Fatalf("doomed row error = %q, want last error surfaced", doomed.Error)
	}
	// Clean rows must not grow retry columns (byte-identity with pre-retry
	// output for unfaulted sweeps).
	for _, i := range []int{0, 2} {
		if strings.Contains(rows[i], "attempts") || strings.Contains(rows[i], "quarantined") {
			t.Fatalf("clean row %d leaked retry columns: %s", i, rows[i])
		}
	}
}

// TestFaultSweepThermalCapZeroQuarantines runs a real faulted sweep: under a
// standing thermal cap every cell must complete (graceful degradation, not
// job death), Perf cells must show the trips, and GreenWeb-I must still beat
// Perf on energy per app.
func TestFaultSweepThermalCapZeroQuarantines(t *testing.T) {
	th := acmp.DefaultThermalParams()
	spec := &faults.Spec{Seed: 21, Thermal: &th}
	appNames := []string{"MSN", "Todo"}
	var jobs []Job
	for _, a := range appNames {
		for _, k := range []harness.Kind{harness.Perf, harness.GreenWebI} {
			jobs = append(jobs, Job{App: a, Kind: k, Phase: Full, Faults: spec})
		}
	}
	p := New(Options{Workers: 2, MaxAttempts: 3})
	defer p.Close()
	res := p.RunSweep(context.Background(), jobs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d (%s) failed: %v", i, r.Job, r.Err)
		}
		if r.Quarantined || r.Attempts != 1 {
			t.Fatalf("job %d (%s): attempts=%d quarantined=%v, want clean first-try success",
				i, r.Job, r.Attempts, r.Quarantined)
		}
	}
	if st := p.Stats(); st.Quarantined != 0 || st.Retried != 0 {
		t.Fatalf("stats = %+v, want no retries or quarantines under a pure thermal cap", st)
	}
	for i := 0; i < len(res); i += 2 {
		perf, green := res[i], res[i+1]
		if perf.Run.ThermalTrips == 0 {
			t.Fatalf("%s: Perf never tripped the thermal governor", perf.Job.App)
		}
		if green.Run.Energy >= perf.Run.Energy {
			t.Fatalf("%s: GreenWeb-I %.3f J not below Perf %.3f J under thermal cap",
				green.Job.App, float64(green.Run.Energy), float64(perf.Run.Energy))
		}
	}
}
