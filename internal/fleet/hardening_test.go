package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// postRaw posts a body with an explicit Content-Type and returns the status
// plus the decoded error payload (if any).
func postRaw(t *testing.T, url, contentType, body string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweeps", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]string
	json.NewDecoder(resp.Body).Decode(&payload)
	return resp.StatusCode, payload
}

func TestServerRejectsNonJSONContentType(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	for _, ct := range []string{"text/plain", "application/xml", "multipart/form-data; boundary=x"} {
		status, payload := postRaw(t, srv.URL, ct, `{"apps":["Todo"],"kinds":["Perf"]}`)
		if status != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status = %d, want 415", ct, status)
		}
		if payload["error"] == "" {
			t.Fatalf("Content-Type %q: missing JSON error body", ct)
		}
	}
	// Parameterized and case-varied JSON media types pass.
	for _, ct := range []string{"application/json", "application/json; charset=utf-8", "Application/JSON"} {
		status, _ := postRaw(t, srv.URL, ct, `{"apps":["Todo"],"kinds":["Perf"]}`)
		if status != http.StatusAccepted {
			t.Fatalf("Content-Type %q: status = %d, want 202", ct, status)
		}
	}
	// An absent Content-Type is tolerated (curl-without-headers ergonomics).
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/sweeps",
		strings.NewReader(`{"apps":["Todo"],"kinds":["Perf"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no Content-Type: status = %d, want 202", resp.StatusCode)
	}
}

func TestServerRejectsOversizedBody(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	// A syntactically valid JSON body just past the limit: the decoder hits
	// MaxBytesReader before finishing, and the handler answers a JSON 400
	// naming the limit rather than a hung or reset connection.
	huge := `{"apps":["Todo"],"kinds":["Perf"],"phase":"` + strings.Repeat("x", maxSweepRequestBytes) + `"}`
	status, payload := postRaw(t, srv.URL, "application/json", huge)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized body: status = %d, want 400", status)
	}
	if !strings.Contains(payload["error"], "exceeds") {
		t.Fatalf("oversized body: error = %q, want the limit named", payload["error"])
	}
}

func TestServerRejectsInvalidFaultSpec(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	cases := []string{
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"dvfs":{"deny_prob":2}}}`,
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"dvfs":{"delay_prob":0.5}}}`,
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"daq":{"drop_prob":-1}}}`,
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"storm_abort":-1}}`,
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"thermal":{"ambient_c":90,"trip_c":70,"clear_c":55,"heat_c_per_sec":1,"cool_c_per_sec":1,"heat_above_mhz":1400,"cap_mhz":1100}}}`,
	}
	for _, body := range cases {
		status, payload := postRaw(t, srv.URL, "application/json", body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %s: status = %d, want 400", body, status)
		}
		if !strings.Contains(payload["error"], "faults:") && !strings.Contains(payload["error"], "thermal") {
			t.Fatalf("body %s: error = %q, want a fault-spec validation error", body, payload["error"])
		}
	}
	// A valid spec is accepted and reaches the jobs.
	status, _ := postRaw(t, srv.URL, "application/json",
		`{"apps":["Todo"],"kinds":["Perf"],"faults":{"seed":9,"dvfs":{"deny_prob":0.1}}}`)
	if status != http.StatusAccepted {
		t.Fatalf("valid fault spec: status = %d, want 202", status)
	}
}
