package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/harness"
)

// postRaw submits a sweep without asserting on the status code, with an
// optional client identity.
func postSweepRaw(t *testing.T, srv *httptest.Server, clientID string) (*http.Response, rejection) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/sweeps",
		strings.NewReader(`{"apps":["Todo"],"kinds":["Perf"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rej rejection
	if resp.StatusCode != http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
			t.Fatalf("status %d with unparsable body: %v", resp.StatusCode, err)
		}
	}
	return resp, rej
}

// checkRetryAfter asserts the header every rejection must carry: a positive
// integer number of seconds, consistent with the JSON retry_after_ms.
func checkRetryAfter(t *testing.T, resp *http.Response, rej rejection) {
	t.Helper()
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", secs)
	}
	if rej.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", rej.RetryAfterMS)
	}
	if want := (rej.RetryAfterMS + 999) / 1000; int64(secs) != want {
		t.Fatalf("Retry-After = %ds disagrees with retry_after_ms %d", secs, rej.RetryAfterMS)
	}
}

// TestTokenBucketRefill drives the bucket math on an injected clock: a
// drained client is told exactly how long until its next token, and the
// bucket refills at RatePerSec without exceeding Burst.
func TestTokenBucketRefill(t *testing.T) {
	clock := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	a := newAdmission(AdmissionOptions{
		RatePerSec: 2, Burst: 2,
		now: func() time.Time { return clock },
	})
	for i := 0; i < 2; i++ {
		if rej := a.admit("c1", 0); rej != nil {
			t.Fatalf("burst submission %d rejected: %+v", i, rej)
		}
	}
	rej := a.admit("c1", 0)
	if rej == nil || rej.Code != CodeRateLimited {
		t.Fatalf("dry bucket admitted, rej = %+v", rej)
	}
	// 2 tokens/sec → next token in 500ms.
	if rej.RetryAfterMS != 500 {
		t.Fatalf("retry_after_ms = %d, want 500", rej.RetryAfterMS)
	}
	// Other clients have their own buckets.
	if rej := a.admit("c2", 0); rej != nil {
		t.Fatalf("fresh client rejected alongside drained one: %+v", rej)
	}
	clock = clock.Add(500 * time.Millisecond)
	if rej := a.admit("c1", 0); rej != nil {
		t.Fatalf("refilled bucket rejected: %+v", rej)
	}
	// A long idle stretch must cap at Burst, not accumulate unbounded.
	clock = clock.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if rej := a.admit("c1", 0); rej != nil {
			t.Fatalf("post-idle submission %d rejected: %+v", i, rej)
		}
	}
	if rej := a.admit("c1", 0); rej == nil {
		t.Fatal("bucket exceeded Burst after idle")
	}
}

// TestAdmissionClientCardinalityBound: past MaxClients distinct identities,
// new clients share one overflow bucket instead of growing the map.
func TestAdmissionClientCardinalityBound(t *testing.T) {
	clock := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	a := newAdmission(AdmissionOptions{
		RatePerSec: 1, Burst: 1, MaxClients: 2,
		now: func() time.Time { return clock },
	})
	a.admit("c1", 0)
	a.admit("c2", 0)
	if rej := a.admit("c3", 0); rej != nil {
		t.Fatalf("first overflow submission rejected: %+v", rej)
	}
	// c4 shares c3's overflow bucket, which is now dry.
	if rej := a.admit("c4", 0); rej == nil || rej.Code != CodeRateLimited {
		t.Fatalf("overflow bucket not shared, rej = %+v", rej)
	}
	if len(a.buckets) != 2 {
		t.Fatalf("bucket map grew to %d, want capped at 2", len(a.buckets))
	}
}

// TestServerRateLimitRejection: over HTTP, a client past its budget gets a
// 429 whose body and Retry-After header are machine-parsable.
func TestServerRateLimitRejection(t *testing.T) {
	pool := New(Options{Workers: 1})
	m := NewManager(context.Background(), pool)
	api := NewServer(m)
	api.ConfigureAdmission(AdmissionOptions{RatePerSec: 0.001, Burst: 1})
	srv := httptest.NewServer(api)
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})

	if resp, _ := postSweepRaw(t, srv, "loadgen-a"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission = %d, want 202", resp.StatusCode)
	}
	resp, rej := postSweepRaw(t, srv, "loadgen-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submission = %d, want 429", resp.StatusCode)
	}
	if rej.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", rej.Code, CodeRateLimited)
	}
	checkRetryAfter(t, resp, rej)

	// A different client identity is not collateral damage.
	if resp, _ := postSweepRaw(t, srv, "loadgen-b"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client = %d, want 202", resp.StatusCode)
	}
}

// TestServerQueueDepthRejection: with workers wedged and the queue past the
// admission ceiling, submissions shed with 429 queue_full and report the
// observed depth.
func TestServerQueueDepthRejection(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		select {
		case <-release:
			return &harness.Run{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	pool := New(Options{Workers: 1, QueueDepth: 64, Execute: exec})
	m := NewManager(context.Background(), pool)
	api := NewServer(m)
	api.ConfigureAdmission(AdmissionOptions{MaxQueueDepth: 2})
	srv := httptest.NewServer(api)
	t.Cleanup(func() {
		close(release)
		srv.Close()
		pool.Close()
	})

	// Each accepted sweep enqueues 4 jobs (2 apps × 2 kinds); the first wedges
	// the lone worker and leaves 3 queued, past the ceiling of 2.
	req := `{"apps":["Todo","MSN"],"kinds":["Perf","GreenWeb-U"]}`
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep = %d, want 202", resp.StatusCode)
	}
	// Submission is async to enqueueing; wait for the queue to fill.
	deadline := time.Now().Add(2 * time.Second)
	for m.Runner().Stats().Queued < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", m.Runner().Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp2, rej := postSweepRaw(t, srv, "")
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission over full queue = %d, want 429", resp2.StatusCode)
	}
	if rej.Code != CodeQueueFull {
		t.Fatalf("code = %q, want %q", rej.Code, CodeQueueFull)
	}
	if rej.QueueDepth < 2 {
		t.Fatalf("queue_depth = %d, want >= 2", rej.QueueDepth)
	}
	checkRetryAfter(t, resp2, rej)
}

// TestDrainRejectionBody: the PR 5 drain path now speaks the same JSON
// rejection dialect as admission control — 503, code "draining", positive
// integer Retry-After.
func TestDrainRejectionBody(t *testing.T) {
	pool := New(Options{Workers: 1})
	m := NewManager(context.Background(), pool)
	api := NewServer(m)
	srv := httptest.NewServer(api)
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})

	api.StartDrain()
	resp, rej := postSweepRaw(t, srv, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", resp.StatusCode)
	}
	if rej.Code != CodeDraining {
		t.Fatalf("code = %q, want %q", rej.Code, CodeDraining)
	}
	checkRetryAfter(t, resp, rej)
}
