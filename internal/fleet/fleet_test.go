package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/harness"
)

// fakeExec returns an executor that signals started on entry and blocks
// until release is closed (or ctx is done).
func fakeExec(started chan<- Job, release <-chan struct{}) func(context.Context, Job) (*harness.Run, error) {
	return func(ctx context.Context, j Job) (*harness.Run, error) {
		if started != nil {
			started <- j
		}
		select {
		case <-release:
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestRunSweepZeroJobs(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	done := make(chan []Result, 1)
	go func() { done <- p.RunSweep(context.Background(), nil) }()
	select {
	case res := <-done:
		if len(res) != 0 {
			t.Fatalf("got %d results for zero jobs", len(res))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSweep deadlocked on zero jobs")
	}
}

func TestQueueSaturationTrySubmitRejects(t *testing.T) {
	started := make(chan Job, 1)
	release := make(chan struct{})
	p := New(Options{Workers: 1, QueueDepth: 1, Execute: fakeExec(started, release)})
	defer p.Close()
	defer close(release)

	// Occupy the single worker...
	if err := p.Submit(context.Background(), Job{App: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...and fill the depth-1 queue.
	if err := p.TrySubmit(context.Background(), Job{App: "b"}, nil); err != nil {
		t.Fatal(err)
	}
	// The queue is saturated: TrySubmit rejects with ErrQueueFull, as
	// documented, while Submit would block.
	if err := p.TrySubmit(context.Background(), Job{App: "c"}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrQueueFull", err)
	}
	// A blocking Submit respects cancellation while waiting for space.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, Job{App: "d"}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	p := New(Options{Workers: 1, Execute: fakeExec(nil, closedChan())})
	p.Close()
	if err := p.Submit(context.Background(), Job{App: "a"}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func TestJobPanicBecomesFailedResult(t *testing.T) {
	boom := func(ctx context.Context, j Job) (*harness.Run, error) {
		if j.App == "boom" {
			panic("cell crashed")
		}
		return &harness.Run{}, nil
	}
	p := New(Options{Workers: 2, Execute: boom})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "ok1"}, {App: "boom"}, {App: "ok2"}})
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("healthy cells failed: %v, %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panicked") {
		t.Fatalf("panicking cell: err = %v, want panic conversion", res[1].Err)
	}
	// The sweep survived and the pool still works.
	again := p.RunSweep(context.Background(), []Job{{App: "ok3"}})
	if again[0].Err != nil {
		t.Fatalf("pool dead after panic: %v", again[0].Err)
	}
	if st := p.Stats(); st.Failed != 1 || st.Done != 3 {
		t.Fatalf("stats done=%d failed=%d, want 3/1", st.Done, st.Failed)
	}
}

// The real harness panics on an unknown governor kind; the fleet must turn
// that into a failed result too (a Job built directly, bypassing Validate).
func TestHarnessPanicRecovered(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "Todo", Kind: "no-such-governor", Phase: Full}})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", res[0].Err)
	}
}

func TestCancellationMidSweep(t *testing.T) {
	started := make(chan Job, 4)
	release := make(chan struct{})
	defer close(release)
	p := New(Options{Workers: 2, QueueDepth: 2, Execute: fakeExec(started, release)})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{App: "x"}
	}
	resc := make(chan []Result, 1)
	go func() { resc <- p.RunSweep(ctx, jobs) }()
	<-started
	<-started // both workers busy, queue full, submitter blocked
	cancel()

	select {
	case res := <-resc:
		if len(res) != len(jobs) {
			t.Fatalf("got %d results, want %d", len(res), len(jobs))
		}
		cancelled := 0
		for _, r := range res {
			if errors.Is(r.Err, context.Canceled) {
				cancelled++
			}
		}
		if cancelled == 0 {
			t.Fatal("no cell reported cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not unwind after cancellation")
	}
}

func TestJobTimeoutBecomesFailedResult(t *testing.T) {
	p := New(Options{Workers: 1, JobTimeout: 10 * time.Millisecond, Execute: fakeExec(nil, make(chan struct{}))})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{{App: "slow"}})
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", res[0].Err)
	}
}

// table3Jobs is the full-interaction Table 3 sweep: every application under
// the paper's two baselines and both GreenWeb scenarios.
func table3Jobs() []Job {
	var jobs []Job
	for _, a := range apps.All() {
		for _, k := range DefaultKinds {
			jobs = append(jobs, Job{App: a.Name, Kind: k, Phase: Full})
		}
	}
	return jobs
}

// marshalRuns canonicalizes runs for byte-for-byte comparison. FrameResults
// and Residency carry the full per-frame timeline; JSON round-trips them
// deterministically except map order, so residency is flattened sorted by
// the deterministic Config index upstream (Distribution) — here we compare
// the scalar measurements plus frame count, which pin down the run.
func marshalRuns(t *testing.T, res []Result) []byte {
	t.Helper()
	type row struct {
		App, Kind  string
		Energy     float64
		Frames     int
		ViolI      float64
		ViolU      float64
		Freq, Migr int
		LoadUS     int64
	}
	var rows []row
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job, r.Err)
		}
		rows = append(rows, row{
			App: r.Job.App, Kind: string(r.Job.Kind),
			Energy: float64(r.Run.Energy), Frames: r.Run.Frames,
			ViolI: r.Run.ViolationI, ViolU: r.Run.ViolationU,
			Freq: r.Run.Switches.FreqSwitches, Migr: r.Run.Switches.Migrations,
			LoadUS: int64(r.Run.LoadLatency),
		})
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelSweepMatchesSequentialByteForByte runs the full Table 3
// sweep through a 4-worker fleet and through the plain sequential harness,
// and requires the serialized measurements to be identical bytes.
func TestParallelSweepMatchesSequentialByteForByte(t *testing.T) {
	jobs := table3Jobs()

	p := New(Options{Workers: 4})
	defer p.Close()
	par := marshalRuns(t, p.RunSweep(context.Background(), jobs))

	var seq []Result
	for _, j := range jobs {
		app, _ := apps.ByName(j.App)
		run, err := harness.ExecuteCell(context.Background(), harness.Cell{App: app, Kind: j.Kind, Full: true})
		seq = append(seq, Result{Job: j, Run: run, Err: err})
	}
	want := marshalRuns(t, seq)

	if string(par) != string(want) {
		t.Fatalf("parallel sweep diverged from sequential harness:\npar: %.400s\nseq: %.400s", par, want)
	}
}

// TestFleetReportMatchesSequentialReport renders the complete evaluation
// report twice — sequential suite vs fleet-prefetched suite — and requires
// identical bytes, the whole-pipeline determinism guarantee cmd/greenbench
// relies on.
func TestFleetReportMatchesSequentialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report render in -short mode")
	}
	var seq strings.Builder
	if err := harness.RenderAll(&seq, harness.NewSuite()); err != nil {
		t.Fatal(err)
	}
	p := New(Options{Workers: 4})
	defer p.Close()
	var par strings.Builder
	if err := harness.RenderAll(&par, NewSuite(context.Background(), p)); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatal("fleet-backed report differs from sequential report")
	}
}

func TestStatsCounters(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	res := p.RunSweep(context.Background(), []Job{
		{App: "Todo", Kind: harness.Perf, Phase: Full},
		{App: "Google", Kind: harness.Perf, Phase: Micro},
	})
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Latency <= 0 {
			t.Fatal("missing job latency")
		}
	}
	st := p.Stats()
	if st.Done != 2 || st.Failed != 0 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Latency.Count != 2 {
		t.Fatalf("latency histogram count = %d, want 2", st.Latency.Count)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
}

func TestJobValidate(t *testing.T) {
	cases := []struct {
		job Job
		ok  bool
	}{
		{Job{App: "Todo", Kind: harness.Perf, Phase: Full}, true},
		{Job{App: "Todo", Kind: harness.GreenWebI, Phase: Micro, Repeats: 5}, true},
		{Job{App: "Nope", Kind: harness.Perf, Phase: Full}, false},
		{Job{App: "Todo", Kind: "Warp", Phase: Full}, false},
		{Job{App: "Todo", Kind: harness.Perf, Phase: "half"}, false},
		{Job{App: "Todo", Kind: harness.Perf, Phase: Full, Repeats: -1}, false},
	}
	for _, c := range cases {
		if err := c.job.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.job, err, c.ok)
		}
	}
}

// Deliver must be called exactly once per job even under heavy concurrent
// submission (run with -race).
func TestDeliverExactlyOnce(t *testing.T) {
	p := New(Options{Workers: 4, QueueDepth: 2, Execute: func(ctx context.Context, j Job) (*harness.Run, error) {
		return &harness.Run{}, nil
	}})
	defer p.Close()
	const n = 200
	var mu sync.Mutex
	counts := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Submit(context.Background(), Job{App: "x"}, func(Result) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for {
		if st := p.Stats(); st.Done == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("jobs did not drain: %+v", p.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if counts[i] != 1 {
			t.Fatalf("job %d delivered %d times", i, counts[i])
		}
	}
}

// TestPoolOverlapsJobs verifies the scheduler actually runs cells
// concurrently, independent of host core count: 8 jobs that each sleep
// 30 ms must finish in far less than 8×30 ms on 4 workers. (The real-sweep
// speedup is BenchmarkFleetSweep's job and needs ≥4 hardware cores.)
func TestPoolOverlapsJobs(t *testing.T) {
	naptime := 30 * time.Millisecond
	nap := func(ctx context.Context, j Job) (*harness.Run, error) {
		select {
		case <-time.After(naptime):
			return &harness.Run{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p := New(Options{Workers: 4, Execute: nap})
	defer p.Close()
	jobs := make([]Job, 8)
	start := time.Now()
	res := p.RunSweep(context.Background(), jobs)
	elapsed := time.Since(start)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// 8 jobs / 4 workers = 2 waves ≈ 60 ms; sequential would be 240 ms.
	// The bound is generous for slow CI machines while still proving
	// overlap.
	if elapsed >= 8*naptime*2/3 {
		t.Fatalf("8×%v jobs took %v on 4 workers — no overlap", naptime, elapsed)
	}
}

func BenchmarkFleetSweep(b *testing.B) {
	jobs := table3Jobs()
	for _, bench := range []struct {
		name    string
		workers int
	}{{"seq-1worker", 1}, {"par-4workers", 4}} {
		b.Run(bench.name, func(b *testing.B) {
			p := New(Options{Workers: bench.workers})
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := p.RunSweep(context.Background(), jobs)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
