package fleet

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// AdmissionOptions configures greensrv's load shedding on POST /v1/sweeps.
// Both mechanisms answer 429 with a machine-parsable body (see rejection)
// and a positive-integer Retry-After header.
type AdmissionOptions struct {
	// MaxQueueDepth rejects new sweeps while the runner's queue holds at
	// least this many jobs; 0 disables the queue gate.
	MaxQueueDepth int
	// RatePerSec is each client's sustained sweep-submission budget
	// (token-bucket refill rate); 0 disables per-client limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity (instantaneous burst allowance);
	// 0 → 10.
	Burst int
	// MaxClients bounds the tracked client buckets; past it, new clients
	// share one overflow bucket (mirrors the obs cardinality bound). 0 → 1024.
	MaxClients int

	// now overrides the clock for tests.
	now func() time.Time
}

// rejection is the JSON body of every 429/503 the server sends for a sweep
// submission: enough for a client to implement honest backoff without
// parsing prose.
type rejection struct {
	Error        string `json:"error"`
	Code         string `json:"code"` // "draining" | "rate_limited" | "queue_full"
	RetryAfterMS int64  `json:"retry_after_ms"`
	QueueDepth   int64  `json:"queue_depth"`
}

// Rejection codes.
const (
	CodeDraining    = "draining"
	CodeRateLimited = "rate_limited"
	CodeQueueFull   = "queue_full"
)

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the server's gate: queue-depth shedding plus per-client
// token buckets keyed on the caller's address.
type admission struct {
	opts AdmissionOptions
	now  func() time.Time

	mu       sync.Mutex
	buckets  map[string]*bucket
	overflow *bucket
}

func newAdmission(opts AdmissionOptions) *admission {
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = 1024
	}
	now := opts.now
	if now == nil {
		now = time.Now
	}
	return &admission{opts: opts, now: now, buckets: make(map[string]*bucket)}
}

// clientKey identifies the submitting client: an explicit X-Client-ID wins
// (load generators and fleets behind one NAT), else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit charges one submission against the client's bucket and the queue
// gate. A nil *rejection admits; otherwise the caller rejects with the
// returned body.
func (a *admission) admit(client string, queued int64) *rejection {
	if a.opts.RatePerSec > 0 {
		if wait, ok := a.take(client); !ok {
			return &rejection{
				Error:        fmt.Sprintf("client %q exceeded %.3g sweeps/sec (burst %d)", client, a.opts.RatePerSec, a.opts.Burst),
				Code:         CodeRateLimited,
				RetryAfterMS: wait.Milliseconds(),
				QueueDepth:   queued,
			}
		}
	}
	if a.opts.MaxQueueDepth > 0 && queued >= int64(a.opts.MaxQueueDepth) {
		// Scale the advised backoff with how far past the gate the queue
		// is: a barely-full queue retries in a second, a deeply backed up
		// one in tens.
		wait := time.Second * time.Duration(1+queued/int64(a.opts.MaxQueueDepth))
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
		return &rejection{
			Error:        fmt.Sprintf("job queue holds %d jobs (admission ceiling %d)", queued, a.opts.MaxQueueDepth),
			Code:         CodeQueueFull,
			RetryAfterMS: wait.Milliseconds(),
			QueueDepth:   queued,
		}
	}
	return nil
}

// take spends one token from the client's bucket, reporting how long until
// the next token when the bucket is dry.
func (a *admission) take(client string) (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[client]
	if !ok {
		if len(a.buckets) >= a.opts.MaxClients {
			if a.overflow == nil {
				a.overflow = &bucket{tokens: float64(a.opts.Burst), last: a.now()}
			}
			b = a.overflow
		} else {
			b = &bucket{tokens: float64(a.opts.Burst), last: a.now()}
			a.buckets[client] = b
		}
	}
	now := a.now()
	b.tokens += now.Sub(b.last).Seconds() * a.opts.RatePerSec
	if b.tokens > float64(a.opts.Burst) {
		b.tokens = float64(a.opts.Burst)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / a.opts.RatePerSec * float64(time.Second))
	return wait, false
}

// writeRejection sends a 429/503 with the JSON body and a positive-integer
// Retry-After header (seconds, rounded up, never below 1).
func writeRejection(w http.ResponseWriter, status int, rej *rejection) {
	if rej.RetryAfterMS <= 0 {
		rej.RetryAfterMS = 1000
	}
	secs := (rej.RetryAfterMS + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, rej)
}
