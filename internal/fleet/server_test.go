package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	pool := New(opts)
	m := NewManager(context.Background(), pool)
	// Isolated trace registry: managers share per-manager sequential sweep
	// ids, so tests sharing the process-global collector would collide.
	m.SetTraceCollector(trace.NewCollector())
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	return srv, m
}

func postSweep(t *testing.T, srv *httptest.Server, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d, want 202", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerSweepLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})

	ack := postSweep(t, srv, `{"apps":["Todo","Google"],"kinds":["Perf"],"phase":"full"}`)
	id, _ := ack["id"].(string)
	if id == "" || ack["jobs"].(float64) != 2 {
		t.Fatalf("ack = %v", ack)
	}

	// Poll status until finished.
	deadline := time.After(30 * time.Second)
	var status SweepStatus
	for !status.Finished {
		select {
		case <-deadline:
			t.Fatalf("sweep never finished: %+v", status)
		case <-time.After(5 * time.Millisecond):
		}
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if status.Done != 2 || status.Failed != 0 || status.Total != 2 {
		t.Fatalf("status = %+v", status)
	}
	for i, j := range status.Jobs {
		if j.Index != i || j.State != StateDone || j.LatencyMS <= 0 {
			t.Fatalf("job %d = %+v", i, j)
		}
	}

	// Results stream: NDJSON rows in submission order with measurements.
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	var rows []ResultRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row ResultRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	wantApps := []string{"Todo", "Google"}
	for i, row := range rows {
		if row.Index != i || row.App != wantApps[i] || row.State != StateDone {
			t.Fatalf("row %d = %+v", i, row)
		}
		if row.EnergyJ <= 0 || row.Frames <= 0 {
			t.Fatalf("row %d carries no measurements: %+v", i, row)
		}
	}
}

// The results endpoint streams: rows for finished jobs arrive while later
// jobs are still running.
func TestServerResultsStreamBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	gate := make(chan Job, 16)
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		gate <- j
		if j.App == "Google" { // second job blocks until released
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &harness.Run{Frames: 1}, nil
	}
	srv, _ := newTestServer(t, Options{Workers: 1, Execute: exec})

	ack := postSweep(t, srv, `{"apps":["Todo","Google"],"kinds":["Perf"]}`)
	id := ack["id"].(string)

	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// First row must arrive while Google still blocks the single worker.
	line := make(chan string, 1)
	go func() {
		if sc.Scan() {
			line <- sc.Text()
		}
	}()
	select {
	case l := <-line:
		var row ResultRow
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatal(err)
		}
		if row.App != "Todo" || row.Index != 0 {
			t.Fatalf("first streamed row = %+v", row)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first row did not stream before sweep completion")
	}
	close(release)
	if !sc.Scan() {
		t.Fatal("second row missing")
	}
}

func TestServerValidationErrors(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	cases := []string{
		`{bad json`,
		`{"apps":["NoSuchApp"]}`,
		`{"kinds":["Warp9"]}`,
		`{"phase":"half"}`,
		`{"repeats":-3}`,
	}
	for _, body := range cases {
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("POST %s: Content-Type = %q, want application/json", body, ct)
		}
		var errBody struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
			t.Errorf("POST %s: body is not a JSON error object: %v", body, err)
		} else if errBody.Error == "" {
			t.Errorf("POST %s: error body has no message", body)
		}
		resp.Body.Close()
	}
}

// Unknown phases and negative repeat counts must be rejected before the
// job grid is expanded — not silently swept with defaults.
func TestSweepRequestRejectsBadPhaseAndRepeats(t *testing.T) {
	if _, err := (&SweepRequest{Phase: "bogus"}).Jobs(); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, err := (&SweepRequest{Repeats: -1}).Jobs(); err == nil {
		t.Error("negative repeats accepted")
	}
	jobs, err := (&SweepRequest{Apps: []string{"Todo"}, Kinds: []string{"Perf"}, Phase: "MICRO"}).Jobs()
	if err != nil {
		t.Fatalf("case-insensitive phase rejected: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Phase != Micro {
		t.Fatalf("jobs = %+v", jobs)
	}
}

// TestServerTraceEndpoint checks GET /v1/sweeps/{id}/trace: it waits for
// the sweep, merges each job's spans into one Chrome trace (one process
// per job), and skips failed jobs rather than erroring.
func TestServerTraceEndpoint(t *testing.T) {
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		if j.App == "Google" {
			return nil, context.Canceled // a failed job must be skipped, not fatal
		}
		return &harness.Run{
			Frames: 1,
			Spans: []ledger.Span{
				{ID: 1, Kind: ledger.KindIdle, Name: "idle/other", Start: 0, End: 1000, Energy: 0.001},
				{ID: 2, Kind: ledger.KindFrame, Name: "frame 1", Seq: 1, Start: 1000, End: 2000, Energy: 0.002},
			},
			ConfigMarks: []ledger.ConfigMark{{At: 1000, From: acmp.LowestConfig(), To: acmp.PeakConfig()}},
		}, nil
	}
	srv, _ := newTestServer(t, Options{Workers: 2, Execute: exec})

	ack := postSweep(t, srv, `{"apps":["Todo","Google"],"kinds":["Perf"]}`)
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + ack["id"].(string) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete int
	pids := make(map[int]bool)
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			complete++
			pids[ev.PID] = true
		}
	}
	if complete != 2 { // only Todo's two spans; Google failed
		t.Errorf("complete events = %d, want 2", complete)
	}
	if len(pids) != 1 || !pids[1] {
		t.Errorf("trace pids = %v, want just pid 1 (Todo)", pids)
	}

	// Unknown sweep → 404 with a JSON error body.
	resp404, err := http.Get(srv.URL + "/v1/sweeps/s-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown trace = %d, want 404", resp404.StatusCode)
	}
}

func TestServerNotFoundAndMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	for _, path := range []string{"/v1/sweeps/s-999999", "/v1/sweeps/s-999999/results"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/sweeps") // only POST is registered
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweeps = %d, want 405", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/healthz", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /healthz = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /no/such/route = %d, want 404", resp.StatusCode)
	}
}

// scrapeMetrics fetches /metrics and returns the sample lines (no comments)
// as a name{labels} → value map, plus the raw body for format assertions.
func scrapeMetrics(t *testing.T, srv *httptest.Server) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, string(raw)
}

func TestServerHealthAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 3})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	// Run a tiny sweep so the counters are non-trivial.
	ack := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf"],"phase":"micro"}`)
	m2, _ := http.Get(srv.URL + "/v1/sweeps/" + ack["id"].(string))
	m2.Body.Close()

	deadline := time.After(30 * time.Second)
	for {
		samples, raw := scrapeMetrics(t, srv)
		if samples["greenweb_fleet_workers"] != 3 || samples["greenweb_fleet_sweeps_total"] != 1 {
			t.Fatalf("metrics:\n%s", raw)
		}
		if samples["greenweb_fleet_jobs_done_total"] == 1 {
			if samples["greenweb_fleet_job_latency_seconds_count"] != 1 {
				t.Fatalf("latency histogram missing:\n%s", raw)
			}
			for _, want := range []string{
				"# TYPE greenweb_fleet_workers gauge",
				"# TYPE greenweb_fleet_jobs_done_total counter",
				"# TYPE greenweb_fleet_job_latency_seconds histogram",
				`greenweb_fleet_job_latency_seconds_bucket{le="+Inf"} 1`,
			} {
				if !strings.Contains(raw, want) {
					t.Errorf("exposition missing %q:\n%s", want, raw)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job never finished:\n%s", raw)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// /debug/pprof/ smoke: the index and a profile endpoint answer 200 with
// non-empty, well-typed bodies.
func TestServerPprofSmoke(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d, body %.80q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine profile:") {
		t.Fatalf("GET /debug/pprof/goroutine = %d, body %.80q", resp.StatusCode, body)
	}
}

// GET /v1/sweeps/{id}/events streams the per-frame decision log as NDJSON:
// one row per frame span, tagged with the job index and app, energies summing
// to each run's frame-energy total.
func TestServerEventsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})

	ack := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf","GreenWeb-U"],"phase":"micro"}`)
	id := ack["id"].(string)

	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	type row struct {
		Index   int     `json:"index"`
		App     string  `json:"app"`
		Span    int     `json:"span"`
		StartUS int64   `json:"start_us"`
		EndUS   int64   `json:"end_us"`
		EnergyJ float64 `json:"energy_j"`
	}
	perJob := make(map[int]int)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if r.App != "Todo" || r.Span <= 0 || r.EndUS < r.StartUS || r.EnergyJ < 0 {
			t.Fatalf("row = %+v", r)
		}
		perJob[r.Index]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(perJob) != 2 || perJob[0] == 0 || perJob[1] == 0 {
		t.Fatalf("decision rows per job = %v, want both jobs represented", perJob)
	}

	resp404, err := http.Get(srv.URL + "/v1/sweeps/s-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown events = %d, want 404", resp404.StatusCode)
	}
}

// A draining server refuses new sweeps with 503 but keeps serving reads, and
// Manager.Drain returns once in-flight sweeps finish.
func TestServerDrain(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		select {
		case <-release:
			return &harness.Run{Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	pool := New(Options{Workers: 1, Execute: exec})
	m := NewManager(context.Background(), pool)
	api := NewServer(m)
	srv := httptest.NewServer(api)
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})

	ack := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf"]}`)
	id := ack["id"].(string)

	api.StartDrain()

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"apps":["Todo"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 has no Retry-After header")
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz while draining = %d, want 503", resp.StatusCode)
	}
	// Reads keep working for in-flight sweeps.
	resp, err = http.Get(srv.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status while draining = %d, want 200", resp.StatusCode)
	}

	done := make(chan error, 1)
	go func() { done <- m.Drain(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Drain returned %v before the sweep finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after jobs finished")
	}
}

// An expired drain deadline cancels the stragglers: Drain returns the
// context error and every job delivers a terminal state.
func TestManagerDrainDeadlineCancels(t *testing.T) {
	exec := func(ctx context.Context, j Job) (*harness.Run, error) {
		<-ctx.Done() // never finishes voluntarily
		return nil, ctx.Err()
	}
	pool := New(Options{Workers: 1, Execute: exec})
	defer pool.Close()
	m := NewManager(context.Background(), pool)
	s, err := m.Enqueue([]Job{{App: "Todo", Kind: harness.Perf, Phase: Full}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("sweep not terminal after expired drain")
	}
	r, err := s.Result(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err == nil {
		t.Fatalf("cancelled job result = %+v, want error", r)
	}
}

func TestServerDefaultsSweepTheWholeGrid(t *testing.T) {
	// An empty body sweeps all 12 apps under the 4 default kinds.
	req := SweepRequest{}
	jobs, err := req.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12*len(DefaultKinds) {
		t.Fatalf("default grid = %d jobs, want %d", len(jobs), 12*len(DefaultKinds))
	}
	for _, j := range jobs {
		if j.Phase != Full {
			t.Fatalf("default phase = %q", j.Phase)
		}
		if j.Kind == harness.Ondemand {
			t.Fatal("Ondemand is not a default sweep kind")
		}
	}
}
