package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
	"github.com/wattwiseweb/greenweb/internal/store"
)

// SweepID identifies an enqueued sweep.
type SweepID string

// Sweep tracks one enqueued batch of jobs: per-job states, results indexed
// by submission position (the deterministic merge the server streams), and
// completion signals for status polling and NDJSON streaming.
type Sweep struct {
	ID      SweepID
	Created time.Time

	mu      sync.Mutex
	jobs    []Job
	results []Result
	state   []State
	rowDone []chan struct{} // closed as each job reaches a terminal state
	pending int
	allDone chan struct{}
	cancel  context.CancelFunc

	// persisted is closed once the sweep's end record has been fsynced to
	// the manager's store; nil when the manager has no store.
	persisted chan struct{}
}

// Persisted reports whether the sweep is durable in the manager's store (a
// restarted server can replay it). Always false without a store.
func (s *Sweep) Persisted() bool {
	if s.persisted == nil {
		return false
	}
	select {
	case <-s.persisted:
		return true
	default:
		return false
	}
}

// Len reports the job count.
func (s *Sweep) Len() int { return len(s.jobs) }

// Done is closed once every job has a terminal state.
func (s *Sweep) Done() <-chan struct{} { return s.allDone }

// Cancel aborts the sweep's outstanding jobs; finished results keep their
// values and the rest fail with context.Canceled.
func (s *Sweep) Cancel() { s.cancel() }

// Result blocks until job i finishes (or ctx is done) and returns its
// result.
func (s *Sweep) Result(ctx context.Context, i int) (Result, error) {
	if i < 0 || i >= len(s.jobs) {
		return Result{}, fmt.Errorf("fleet: job index %d out of range", i)
	}
	select {
	case <-s.rowDone[i]:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[i], nil
}

func (s *Sweep) finish(i int, r Result) {
	s.mu.Lock()
	s.results[i] = r
	s.state[i] = r.State()
	s.pending--
	last := s.pending == 0
	s.mu.Unlock()
	close(s.rowDone[i])
	if last {
		close(s.allDone)
	}
}

// JobStatus is one job's row in a sweep status report.
type JobStatus struct {
	Index     int          `json:"index"`
	App       string       `json:"app"`
	Kind      harness.Kind `json:"kind"`
	Phase     Phase        `json:"phase"`
	State     State        `json:"state"`
	LatencyMS float64      `json:"latency_ms,omitempty"`
	// Attempts surfaces retries (only when >1); Quarantined marks a job
	// that failed through every allowed attempt.
	Attempts    int    `json:"attempts,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} body.
type SweepStatus struct {
	ID       SweepID     `json:"id"`
	Created  time.Time   `json:"created"`
	Total    int         `json:"total"`
	Queued   int         `json:"queued"`
	Running  int         `json:"running"`
	Done     int         `json:"done"`
	Failed   int         `json:"failed"`
	Finished bool        `json:"finished"`
	// Persisted is true once the sweep is durable in the server's store
	// (omitted entirely when the server runs without one).
	Persisted bool `json:"persisted,omitempty"`
	// Replayed marks a status reconstructed from the store after a restart.
	Replayed bool        `json:"replayed,omitempty"`
	Jobs     []JobStatus `json:"jobs"`
}

// Status snapshots the sweep.
func (s *Sweep) Status() SweepStatus {
	persisted := s.Persisted()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SweepStatus{ID: s.ID, Created: s.Created, Total: len(s.jobs),
		Finished: s.pending == 0, Persisted: persisted}
	for i, j := range s.jobs {
		js := JobStatus{Index: i, App: j.App, Kind: j.Kind, Phase: j.Phase, State: s.state[i]}
		switch s.state[i] {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
			js.LatencyMS = float64(s.results[i].Latency) / float64(time.Millisecond)
			if s.results[i].Attempts > 1 {
				js.Attempts = s.results[i].Attempts
			}
		case StateFailed:
			st.Failed++
			js.LatencyMS = float64(s.results[i].Latency) / float64(time.Millisecond)
			js.Error = s.results[i].Err.Error()
			if s.results[i].Attempts > 1 {
				js.Attempts = s.results[i].Attempts
			}
			js.Quarantined = s.results[i].Quarantined
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st
}

// registryShards spreads sweep lookups across independently locked maps so
// a busy server's status polls don't serialize on one mutex.
const registryShards = 16

type registryShard struct {
	mu     sync.RWMutex
	sweeps map[SweepID]*Sweep
}

// Manager owns the runner-facing sweep lifecycle for the job server: it
// assigns IDs, submits jobs asynchronously (absorbing queue backpressure
// off the HTTP handler), resolves IDs through a sharded registry, and —
// when given a store — persists every finished sweep and replays persisted
// ones that predate this process.
type Manager struct {
	ctx    context.Context // parents every sweep; server lifetime
	runner Runner
	st     *store.Store // nil → in-memory only
	seq    atomic.Uint64
	shards [registryShards]registryShard
	// noTracing disables fleet-wide span recording (greensrv -no-trace).
	// Zero value = tracing on; the obs gate still applies on top.
	noTracing atomic.Bool
	// traces is where this manager registers sweep span buffers. Production
	// uses the process-global trace.Default() (so the shard layer, which only
	// sees jobs, finds the buffers); tests inject isolated collectors because
	// managers sharing a process would collide on their per-manager
	// sequential sweep ids.
	traces *trace.Collector
}

// SetTracing flips fleet-wide distributed tracing (default on). Tracing is
// additionally gated by the obs enable state: -no-obs implies no tracing.
func (m *Manager) SetTracing(on bool) { m.noTracing.Store(!on) }

// TracingEnabled reports whether new sweeps will be traced.
func (m *Manager) TracingEnabled() bool {
	return !m.noTracing.Load() && obs.EnabledIn(m.ctx)
}

// NewManager builds a manager over any Runner (a Pool or a shard cluster);
// ctx bounds the lifetime of every sweep it enqueues (pass the server's
// base context).
func NewManager(ctx context.Context, r Runner) *Manager {
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Manager{ctx: ctx, runner: r, traces: trace.Default()}
	for i := range m.shards {
		m.shards[i].sweeps = make(map[SweepID]*Sweep)
	}
	return m
}

// SetTraceCollector swaps the trace registry (tests only — see the traces
// field). Call before the first Enqueue.
func (m *Manager) SetTraceCollector(c *trace.Collector) { m.traces = c }

// Traces exposes the manager's trace registry (the /trace?fleet=1 handler
// reads it).
func (m *Manager) Traces() *trace.Collector { return m.traces }

// Runner exposes the execution backend (for /metrics and admission).
func (m *Manager) Runner() Runner { return m.runner }

// Store exposes the durable sweep store (nil without one).
func (m *Manager) Store() *store.Store { return m.st }

// SetStore attaches the durable store. Must be called before the first
// Enqueue. The ID sequence skips past every persisted sweep so restarted
// servers never mint a colliding ID.
func (m *Manager) SetStore(st *store.Store) {
	m.st = st
	for _, id := range st.IDs() {
		var n uint64
		if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > m.seq.Load() {
			m.seq.Store(n)
		}
	}
}

// persistMeta is the store's opaque registration payload for a sweep.
type persistMeta struct {
	Jobs []Job `json:"jobs"`
}

// persist streams the sweep's rows into the store as they finish (in
// submission order — the same deterministic merge the HTTP stream serves)
// and fsyncs the end record, then marks the sweep persisted.
func (m *Manager) persist(s *Sweep) {
	meta, err := json.Marshal(persistMeta{Jobs: s.jobs})
	if err != nil {
		return
	}
	if err := m.st.Begin(string(s.ID), s.Created, meta); err != nil {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < s.Len(); i++ {
		res, err := s.Result(m.ctx, i)
		if err != nil {
			return // server shutting down
		}
		buf.Reset()
		if err := enc.Encode(rowOf(i, res)); err != nil {
			return
		}
		line := append([]byte(nil), bytes.TrimSuffix(buf.Bytes(), []byte("\n"))...)
		if err := m.st.AppendRow(string(s.ID), i, line); err != nil {
			return
		}
	}
	if err := m.st.End(string(s.ID)); err != nil {
		return
	}
	close(s.persisted)
}

// StoredStatus reconstructs a replayed sweep's status from the store. It
// answers for completed sweeps from before this process's lifetime.
func (m *Manager) StoredStatus(id SweepID) (SweepStatus, bool) {
	if m.st == nil {
		return SweepStatus{}, false
	}
	rec, ok := m.st.Get(string(id))
	if !ok {
		return SweepStatus{}, false
	}
	st := SweepStatus{ID: id, Created: rec.Created, Total: len(rec.Rows),
		Finished: true, Persisted: true, Replayed: true}
	for i, raw := range rec.Rows {
		var row ResultRow
		if err := json.Unmarshal(raw, &row); err != nil {
			continue
		}
		js := JobStatus{Index: i, App: row.App, Kind: row.Kind, Phase: row.Phase,
			State: row.State, LatencyMS: row.LatencyMS, Quarantined: row.Quarantined, Error: row.Error}
		if row.Attempts > 1 {
			js.Attempts = row.Attempts
		}
		if row.State == StateFailed {
			st.Failed++
		} else {
			st.Done++
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st, true
}

// StoredRows returns a replayed sweep's NDJSON result lines.
func (m *Manager) StoredRows(id SweepID) ([]json.RawMessage, bool) {
	if m.st == nil {
		return nil, false
	}
	rec, ok := m.st.Get(string(id))
	if !ok {
		return nil, false
	}
	return rec.Rows, true
}

func (m *Manager) shardFor(id SweepID) *registryShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%registryShards]
}

// Get resolves a sweep ID.
func (m *Manager) Get(id SweepID) (*Sweep, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.sweeps[id]
	return s, ok
}

// Enqueue validates the jobs, registers a sweep, and starts feeding the
// pool in the background. It returns as soon as the sweep is registered;
// queue backpressure is absorbed by the feeding goroutine, not the caller.
func (m *Manager) Enqueue(jobs []Job) (*Sweep, error) {
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	ctx, cancel := context.WithCancel(m.ctx)
	s := &Sweep{
		ID:      SweepID(fmt.Sprintf("s-%06d", m.seq.Add(1))),
		Created: time.Now(),
		jobs:    append([]Job(nil), jobs...),
		results: make([]Result, len(jobs)),
		state:   make([]State, len(jobs)),
		rowDone: make([]chan struct{}, len(jobs)),
		pending: len(jobs),
		allDone: make(chan struct{}),
		cancel:  cancel,
	}
	for i := range s.state {
		s.state[i] = StateQueued
		s.rowDone[i] = make(chan struct{})
	}
	if m.st != nil {
		s.persisted = make(chan struct{})
	}
	if len(jobs) == 0 {
		close(s.allDone)
	}
	sh := m.shardFor(s.ID)
	sh.mu.Lock()
	sh.sweeps[s.ID] = s
	sh.mu.Unlock()

	if m.st != nil {
		go m.persist(s)
	}
	// Traced sweeps get a merged span buffer; each job is fed to the runner
	// as a copy carrying its trace context, so s.jobs (and therefore the
	// WAL's persistMeta bytes) never see tracing fields.
	var tr *trace.SweepTrace
	if m.TracingEnabled() && len(jobs) > 0 {
		tr = m.traces.Register(string(s.ID), len(jobs))
	}
	go func() {
		for i, job := range s.jobs {
			i := i
			started := func() {
				s.mu.Lock()
				if s.state[i] == StateQueued {
					s.state[i] = StateRunning
				}
				s.mu.Unlock()
			}
			deliver := func(r Result) { s.finish(i, r) }
			if tr != nil {
				// Root span id is minted up front so queue-wait, worker
				// spans, and the root itself all agree on parentage.
				rootID := tr.NewID()
				job.Trace = &trace.Context{Sweep: string(s.ID), Job: i, Parent: rootID}
				submitted := time.Now()
				innerStarted := started
				started = func() {
					tr.Record(i, rootID, "queue-wait", "queue", submitted, time.Since(submitted), nil)
					innerStarted()
				}
				deliver = func(r Result) {
					tr.AddSpans(r.Spans, r.SpanDrops)
					tr.RecordSpan(trace.Span{
						ID: rootID, Name: "job", Cat: "job", Job: i,
						StartUS: submitted.UnixMicro(),
						DurUS:   int64(time.Since(submitted) / time.Microsecond),
						Attrs: map[string]string{
							"app": job.App, "kind": string(job.Kind), "state": string(r.State()),
						},
					})
					s.finish(i, r)
				}
			}
			err := m.runner.Start(ctx, job, started, deliver)
			if err != nil {
				s.finish(i, Result{Job: job, Worker: -1, Err: err})
			}
		}
	}()
	return s, nil
}

// Drain blocks until every registered sweep has finished, or ctx expires.
// On expiry the stragglers are cancelled and Drain waits for their jobs to
// deliver (cancellation propagates at simulation-chunk granularity inside
// the harness, so this wait is bounded), then returns ctx's error. greensrv
// runs this between "stop accepting sweeps" and "shut the pool down".
func (m *Manager) Drain(ctx context.Context) error {
	for _, s := range m.Sweeps() {
		select {
		case <-s.Done():
		case <-ctx.Done():
			// Deadline passed: cancel everything still in flight, then wait
			// for the cancellations to deliver so the pool can close cleanly.
			for _, s2 := range m.Sweeps() {
				select {
				case <-s2.Done():
				default:
					s2.Cancel()
				}
			}
			for _, s2 := range m.Sweeps() {
				<-s2.Done()
			}
			return ctx.Err()
		}
	}
	return nil
}

// Counts reports how many sweeps are registered and how many have finished,
// for metrics exposition.
func (m *Manager) Counts() (total, finished int) {
	for _, s := range m.Sweeps() {
		total++
		select {
		case <-s.Done():
			finished++
		default:
		}
	}
	return total, finished
}

// Sweeps lists all registered sweeps (newest last by ID order not
// guaranteed; callers sort as needed).
func (m *Manager) Sweeps() []*Sweep {
	var out []*Sweep
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sweeps {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}
