// Package fleet is the concurrent experiment scheduler: it fans experiment
// jobs — one per app × governor × trace cell of the paper's evaluation —
// out across a pool of workers, each running an isolated simulated device
// (fresh sim/CPU/engine/governor per job, no shared mutable state).
//
// The scheduler provides the guarantees a sweep needs to be both fast and
// trustworthy:
//
//   - a bounded job queue (Submit blocks when full; TrySubmit rejects);
//   - per-job timeout and cancellation via context.Context, checked at
//     simulation-chunk granularity inside the harness;
//   - panic recovery, converting a crashed cell into a failed-job Result
//     instead of killing the sweep;
//   - a deterministic merge: RunSweep returns results in submission order
//     regardless of completion order, and every cell executes with
//     harness.ExecuteCell semantics on a private device, so aggregated
//     output is byte-identical to the sequential harness path.
//
// On top of the pool, Manager tracks named sweeps for the cmd/greensrv job
// server (sharded registry, per-job completion signals for NDJSON result
// streaming), and SuiteRunner plugs the pool into harness.Suite so the
// figure/table generators prefetch their working set concurrently.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/metrics"
)

// Phase selects which interaction trace a job replays.
type Phase string

// The two measurement phases of the paper's protocol.
const (
	Micro Phase = "micro" // single-primitive microbenchmark, repeated runs
	Full  Phase = "full"  // Table 3 full-interaction trace, one cold run
)

// Job is one experiment cell: an application under a governor, replaying
// one of its traces. Jobs are plain values — the worker materializes the
// simulated device fresh per job.
type Job struct {
	App     string       `json:"app"`
	Kind    harness.Kind `json:"kind"`
	Phase   Phase        `json:"phase"`
	Repeats int          `json:"repeats,omitempty"` // 0 → phase default (micro: harness.MicroRepeats, full: 1)
}

func (j Job) String() string { return fmt.Sprintf("%s/%s/%s", j.App, j.Kind, j.Phase) }

// Validate resolves the job against the application catalog and governor
// list without running it, so external input (the job server) fails fast
// with a useful error instead of a failed job.
func (j Job) Validate() error {
	if _, ok := apps.ByName(j.App); !ok {
		return fmt.Errorf("fleet: unknown app %q", j.App)
	}
	if _, err := harness.ParseKind(string(j.Kind)); err != nil {
		return err
	}
	switch j.Phase {
	case Micro, Full:
	default:
		return fmt.Errorf("fleet: unknown phase %q", j.Phase)
	}
	if j.Repeats < 0 {
		return fmt.Errorf("fleet: negative repeats %d", j.Repeats)
	}
	return nil
}

// execute runs the cell on a fresh simulated device. Default repeats follow
// the suite's protocol exactly (see harness.ExecuteCell), so a fleet result
// is interchangeable with a sequentially computed one.
func (j Job) execute(ctx context.Context) (*harness.Run, error) {
	app, ok := apps.ByName(j.App)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown app %q", j.App)
	}
	trace, repeats := app.Micro, harness.MicroRepeats
	if j.Phase == Full {
		trace, repeats = app.Full, 1
	}
	if j.Repeats > 0 {
		repeats = j.Repeats
	}
	return harness.ExecuteRepeatedContext(ctx, app, j.Kind, trace, repeats)
}

// State is a job's lifecycle position.
type State string

// Job states, in order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Result is one finished job.
type Result struct {
	Job    Job
	Run    *harness.Run // nil when Err != nil
	Err    error
	Worker int // index of the worker that ran the job (-1 if never scheduled)
	// Latency is the wall-clock execution time, excluding queueing.
	Latency time.Duration
}

// State reports the terminal state the result represents.
func (r Result) State() State {
	if r.Err != nil {
		return StateFailed
	}
	return StateDone
}

// Sentinel errors for submission.
var (
	ErrQueueFull = errors.New("fleet: job queue full")
	ErrClosed    = errors.New("fleet: pool closed")
)

// Options configures a Pool.
type Options struct {
	// Workers is the number of concurrent simulated devices; 0 → GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; 0 → 4×Workers. Submit blocks while
	// the queue is full; TrySubmit rejects with ErrQueueFull instead.
	QueueDepth int
	// JobTimeout caps one job's execution; 0 disables. An expired cell
	// becomes a failed result (context.DeadlineExceeded), not a dead worker.
	JobTimeout time.Duration
	// Execute overrides the cell executor; tests use it to inject slow,
	// panicking, or instant jobs. nil → the real harness execution.
	Execute func(ctx context.Context, j Job) (*harness.Run, error)
}

type task struct {
	job     Job
	ctx     context.Context
	started func()       // optional: job left the queue
	deliver func(Result) // called exactly once, from the worker goroutine
}

// Pool is the worker-pool scheduler. Create with New, stop with Close.
type Pool struct {
	opts  Options
	queue chan task
	wg    sync.WaitGroup
	start time.Time

	mu     sync.RWMutex
	closed bool

	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	busy    atomic.Int64 // accumulated busy nanoseconds across workers
	hist    *metrics.Histogram
}

// New builds the pool and starts its workers.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.Workers
	}
	if opts.Execute == nil {
		opts.Execute = func(ctx context.Context, j Job) (*harness.Run, error) { return j.execute(ctx) }
	}
	p := &Pool{
		opts:  opts,
		queue: make(chan task, opts.QueueDepth),
		start: time.Now(),
		hist:  metrics.NewLatencyHistogram(),
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.opts.Workers }

// Close stops intake, drains queued jobs, and waits for the workers.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Submit enqueues the job, blocking while the queue is full. It returns
// ctx's error if cancelled while waiting, or ErrClosed after Close.
// deliver is called exactly once, from a worker goroutine, when the job
// finishes — including failure and cancellation.
func (p *Pool) Submit(ctx context.Context, job Job, deliver func(Result)) error {
	return p.submit(task{job: job, ctx: ctx, deliver: deliver}, true)
}

// TrySubmit is Submit without blocking: a full queue rejects the job with
// ErrQueueFull and deliver is never called.
func (p *Pool) TrySubmit(ctx context.Context, job Job, deliver func(Result)) error {
	return p.submit(task{job: job, ctx: ctx, deliver: deliver}, false)
}

func (p *Pool) submit(t task, wait bool) error {
	if t.ctx == nil {
		t.ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.queued.Add(1)
	if wait {
		select {
		case p.queue <- t:
			return nil
		case <-t.ctx.Done():
			p.queued.Add(-1)
			return t.ctx.Err()
		}
	}
	select {
	case p.queue <- t:
		return nil
	default:
		p.queued.Add(-1)
		return ErrQueueFull
	}
}

func (p *Pool) worker(idx int) {
	defer p.wg.Done()
	for t := range p.queue {
		p.queued.Add(-1)
		p.running.Add(1)
		if t.started != nil {
			t.started()
		}
		start := time.Now()
		res := p.runOne(t.ctx, idx, t.job)
		res.Latency = time.Since(start)
		p.busy.Add(int64(res.Latency))
		p.hist.Observe(res.Latency.Seconds())
		p.running.Add(-1)
		if res.Err != nil {
			p.failed.Add(1)
		} else {
			p.done.Add(1)
		}
		if t.deliver != nil {
			t.deliver(res)
		}
	}
}

// runOne executes one job with panic recovery and the per-job timeout; a
// crashed or expired cell becomes a failed result instead of killing the
// sweep or the worker.
func (p *Pool) runOne(ctx context.Context, worker int, job Job) (res Result) {
	res = Result{Job: job, Worker: worker}
	defer func() {
		if r := recover(); r != nil {
			res.Run = nil
			res.Err = fmt.Errorf("fleet: %s panicked: %v", job, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if p.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.opts.JobTimeout)
		defer cancel()
	}
	res.Run, res.Err = p.opts.Execute(ctx, job)
	return res
}

// RunSweep fans the jobs out and blocks until every one has a result. The
// returned slice is the deterministic merge: results[i] corresponds to
// jobs[i] regardless of completion order. Cancellation mid-sweep converts
// the not-yet-finished cells into failed results carrying ctx's error; the
// slice is always fully populated.
func (p *Pool) RunSweep(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i, job := range jobs {
		i, job := i, job
		err := p.Submit(ctx, job, func(r Result) {
			results[i] = r
			wg.Done()
		})
		if err != nil {
			results[i] = Result{Job: job, Worker: -1, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return results
}

// Stats is a snapshot of the fleet counters, served by /metrics.
type Stats struct {
	Workers     int                       `json:"workers"`
	Queued      int64                     `json:"queued"`
	Running     int64                     `json:"running"`
	Done        int64                     `json:"done"`
	Failed      int64                     `json:"failed"`
	Utilization float64                   `json:"utilization"` // busy worker-time / available worker-time since start
	Latency     metrics.HistogramSnapshot `json:"latency"`     // wall-clock job latency, seconds
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	elapsed := time.Since(p.start)
	util := 0.0
	if elapsed > 0 {
		util = float64(p.busy.Load()) / (float64(elapsed) * float64(p.opts.Workers))
	}
	queued := p.queued.Load()
	if queued < 0 { // transient submit/drain race on the gauge
		queued = 0
	}
	return Stats{
		Workers:     p.opts.Workers,
		Queued:      queued,
		Running:     p.running.Load(),
		Done:        p.done.Load(),
		Failed:      p.failed.Load(),
		Utilization: util,
		Latency:     p.hist.Snapshot(),
	}
}
