// Package fleet is the concurrent experiment scheduler: it fans experiment
// jobs — one per app × governor × trace cell of the paper's evaluation —
// out across a pool of workers, each running an isolated simulated device
// (fresh sim/CPU/engine/governor per job, no shared mutable state).
//
// The scheduler provides the guarantees a sweep needs to be both fast and
// trustworthy:
//
//   - a bounded job queue (Submit blocks when full; TrySubmit rejects);
//   - per-job timeout and cancellation via context.Context, checked at
//     simulation-chunk granularity inside the harness;
//   - panic recovery, converting a crashed cell into a failed-job Result
//     instead of killing the sweep;
//   - a deterministic merge: RunSweep returns results in submission order
//     regardless of completion order, and every cell executes with
//     harness.ExecuteCell semantics on a private device, so aggregated
//     output is byte-identical to the sequential harness path.
//
// On top of the pool, Manager tracks named sweeps for the cmd/greensrv job
// server (sharded registry, per-job completion signals for NDJSON result
// streaming), and SuiteRunner plugs the pool into harness.Suite so the
// figure/table generators prefetch their working set concurrently.
package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/trace"
)

// Phase selects which interaction trace a job replays.
type Phase string

// The two measurement phases of the paper's protocol.
const (
	Micro Phase = "micro" // single-primitive microbenchmark, repeated runs
	Full  Phase = "full"  // Table 3 full-interaction trace, one cold run
)

// Job is one experiment cell: an application under a governor, replaying
// one of its traces. Jobs are plain values — the worker materializes the
// simulated device fresh per job.
type Job struct {
	App     string       `json:"app"`
	Kind    harness.Kind `json:"kind"`
	Phase   Phase        `json:"phase"`
	Repeats int          `json:"repeats,omitempty"` // 0 → phase default (micro: harness.MicroRepeats, full: 1)
	// Faults optionally runs the cell on a faulted device (thermal caps,
	// DVFS transition failures, DAQ dropout). nil → pristine hardware.
	Faults *faults.Spec `json:"faults,omitempty"`
	// StageWorkers overrides the render pipeline's stage-thread count for
	// this cell: 0 → the process default, 1 → force serial frame
	// production, 2..browser.MaxStageWorkers → staged with that many cores.
	StageWorkers int `json:"stage_workers,omitempty"`
	// Trace is the distributed-tracing context (sweep id, job index,
	// attempt, parent span id), stamped by the manager on traced sweeps.
	// Out-of-band by construction: no output path reads it, the WAL never
	// persists it (the manager strips it before persistMeta), and the shard
	// transport strips it for workers that did not negotiate tracing in the
	// handshake.
	Trace *trace.Context `json:"trace,omitempty"`
}

func (j Job) String() string { return fmt.Sprintf("%s/%s/%s", j.App, j.Kind, j.Phase) }

// Validate resolves the job against the application catalog and governor
// list without running it, so external input (the job server) fails fast
// with a useful error instead of a failed job.
func (j Job) Validate() error {
	if _, ok := apps.ByName(j.App); !ok {
		return fmt.Errorf("fleet: unknown app %q", j.App)
	}
	if _, err := harness.ParseKind(string(j.Kind)); err != nil {
		return err
	}
	switch j.Phase {
	case Micro, Full:
	default:
		return fmt.Errorf("fleet: unknown phase %q", j.Phase)
	}
	if j.Repeats < 0 {
		return fmt.Errorf("fleet: negative repeats %d", j.Repeats)
	}
	if !harness.ValidStageWorkers(j.StageWorkers) {
		return fmt.Errorf("fleet: stage workers %d out of range", j.StageWorkers)
	}
	if err := j.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// execute runs the cell on a fresh simulated device. Default repeats follow
// the suite's protocol exactly (see harness.ExecuteCell), so a fleet result
// is interchangeable with a sequentially computed one.
func (j Job) execute(ctx context.Context) (*harness.Run, error) {
	app, ok := apps.ByName(j.App)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown app %q", j.App)
	}
	trace, repeats := app.Micro, harness.MicroRepeats
	if j.Phase == Full {
		trace, repeats = app.Full, 1
	}
	if j.Repeats > 0 {
		repeats = j.Repeats
	}
	if j.StageWorkers > 0 {
		ctx = harness.WithStageWorkers(ctx, j.StageWorkers)
	}
	return harness.ExecuteFaultedRepeatedContext(ctx, app, j.Kind, trace, repeats, j.Faults)
}

// State is a job's lifecycle position.
type State string

// Job states, in order.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Result is one finished job.
type Result struct {
	Job    Job
	Run    *harness.Run // nil when Err != nil
	Err    error
	Worker int // index of the worker that ran the job (-1 if never scheduled)
	// Latency is the wall-clock execution time, excluding queueing (all
	// attempts, including backoff sleeps).
	Latency time.Duration

	// Attempts is how many executions the job consumed (1 for a clean
	// first run; up to Options.MaxAttempts for a flaky or doomed one).
	Attempts int
	// History holds each failed attempt's error string, in attempt order —
	// the quarantine record, and the provenance of a retried success.
	History []string
	// Quarantined marks a job that failed on its own account (panic,
	// timeout, fault storm) through every allowed attempt. Jobs killed by
	// sweep-level cancellation are failed but not quarantined.
	Quarantined bool

	// Spans carries the executing process's trace spans for a traced job
	// (execute attempts, backoff sleeps), shipped alongside the result —
	// never inside any byte-compared output. SpanDrops counts spans the
	// per-job budget discarded.
	Spans     []trace.Span
	SpanDrops int
}

// State reports the terminal state the result represents.
func (r Result) State() State {
	if r.Err != nil {
		return StateFailed
	}
	return StateDone
}

// Sentinel errors for submission.
var (
	ErrQueueFull = errors.New("fleet: job queue full")
	ErrClosed    = errors.New("fleet: pool closed")
)

// Runner is the execution backend a Manager schedules sweeps onto: the
// single-process Pool, or a multi-node shard.Cluster. Start enqueues one job
// (blocking while the backend is saturated, aborting on ctx) and guarantees
// deliver is called exactly once with the job's terminal Result; started, if
// non-nil, fires when the job leaves the queue for a worker.
type Runner interface {
	Start(ctx context.Context, job Job, started func(), deliver func(Result)) error
	// Workers is the total concurrent execution slots.
	Workers() int
	// Stats snapshots the backend's live counters (queue depth feeds
	// admission control).
	Stats() Stats
	// RegisterMetrics exposes the backend's counters on an obs registry.
	RegisterMetrics(reg *obs.Registry)
	// Close stops intake, drains queued jobs, and waits for the workers.
	Close()
}

// Options configures a Pool.
type Options struct {
	// Workers is the number of concurrent simulated devices; 0 → GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; 0 → 4×Workers. Submit blocks while
	// the queue is full; TrySubmit rejects with ErrQueueFull instead.
	QueueDepth int
	// JobTimeout caps one job attempt's execution; 0 disables. An expired
	// attempt becomes a failed attempt (context.DeadlineExceeded), not a
	// dead worker — and is retried like any other failure.
	JobTimeout time.Duration
	// MaxAttempts is the total executions a failing job may consume before
	// quarantine (1 = no retry); 0 → 1. Failures covered: panics, per-
	// attempt timeouts, and harness errors such as injected fault storms.
	MaxAttempts int
	// RetryBaseDelay is the first retry's backoff (doubled per further
	// attempt, capped at RetryMaxDelay). 0 → 50ms. The worker sleeps the
	// backoff in place: a quarantine-bound cell should not hammer the CPU.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff. 0 → 2s.
	RetryMaxDelay time.Duration
	// RetrySeed drives the deterministic backoff jitter (±25%, an FNV hash
	// of seed × job × attempt — no global randomness, so a replayed sweep
	// backs off identically).
	RetrySeed int64
	// Execute overrides the cell executor; tests use it to inject slow,
	// panicking, or instant jobs. nil → the real harness execution.
	Execute func(ctx context.Context, j Job) (*harness.Run, error)
	// SpanBudget caps one traced job's recorded spans; 0 →
	// trace.DefaultJobBudget. Overflow increments the result's SpanDrops.
	SpanBudget int
}

type task struct {
	job     Job
	ctx     context.Context
	started func()       // optional: job left the queue
	deliver func(Result) // called exactly once, from the worker goroutine
}

// Pool is the worker-pool scheduler. Create with New, stop with Close.
type Pool struct {
	opts  Options
	queue chan task
	wg    sync.WaitGroup
	start time.Time

	mu     sync.RWMutex
	closed bool

	queued      atomic.Int64
	running     atomic.Int64
	done        atomic.Int64
	failed      atomic.Int64
	retried     atomic.Int64 // attempts beyond each job's first
	quarantined atomic.Int64 // jobs that exhausted every attempt
	spanDrops   atomic.Int64 // trace spans discarded to per-job budgets
	busy        atomic.Int64 // accumulated busy nanoseconds across workers
	hist        *obs.Histogram
}

// New builds the pool and starts its workers.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.Workers
	}
	if opts.Execute == nil {
		opts.Execute = func(ctx context.Context, j Job) (*harness.Run, error) { return j.execute(ctx) }
	}
	p := &Pool{
		opts:  opts,
		queue: make(chan task, opts.QueueDepth),
		start: time.Now(),
		hist:  obs.NewLatencyHistogram(),
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.opts.Workers }

// Close stops intake, drains queued jobs, and waits for the workers.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Submit enqueues the job, blocking while the queue is full. It returns
// ctx's error if cancelled while waiting, or ErrClosed after Close.
// deliver is called exactly once, from a worker goroutine, when the job
// finishes — including failure and cancellation.
func (p *Pool) Submit(ctx context.Context, job Job, deliver func(Result)) error {
	return p.submit(task{job: job, ctx: ctx, deliver: deliver}, true)
}

// TrySubmit is Submit without blocking: a full queue rejects the job with
// ErrQueueFull and deliver is never called.
func (p *Pool) TrySubmit(ctx context.Context, job Job, deliver func(Result)) error {
	return p.submit(task{job: job, ctx: ctx, deliver: deliver}, false)
}

// Start implements Runner: Submit with a started hook that fires when the
// job leaves the queue for a worker.
func (p *Pool) Start(ctx context.Context, job Job, started func(), deliver func(Result)) error {
	return p.submit(task{job: job, ctx: ctx, started: started, deliver: deliver}, true)
}

func (p *Pool) submit(t task, wait bool) error {
	if t.ctx == nil {
		t.ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.queued.Add(1)
	if wait {
		select {
		case p.queue <- t:
			return nil
		case <-t.ctx.Done():
			p.queued.Add(-1)
			return t.ctx.Err()
		}
	}
	select {
	case p.queue <- t:
		return nil
	default:
		p.queued.Add(-1)
		return ErrQueueFull
	}
}

func (p *Pool) worker(idx int) {
	defer p.wg.Done()
	for t := range p.queue {
		p.queued.Add(-1)
		p.running.Add(1)
		if t.started != nil {
			t.started()
		}
		start := time.Now()
		res := p.runOne(t.ctx, idx, t.job)
		res.Latency = time.Since(start)
		p.busy.Add(int64(res.Latency))
		p.hist.Observe(res.Latency.Seconds())
		p.running.Add(-1)
		if res.Err != nil {
			p.failed.Add(1)
		} else {
			p.done.Add(1)
		}
		if t.deliver != nil {
			t.deliver(res)
		}
	}
}

// runOne executes one job through the retry ladder: each attempt runs with
// panic recovery and the per-attempt timeout; failed attempts back off
// (capped exponential, deterministically jittered) and retry until success,
// MaxAttempts exhaustion (→ quarantine), or sweep-level cancellation.
func (p *Pool) runOne(ctx context.Context, worker int, job Job) Result {
	res := Result{Job: job, Worker: worker}
	// A traced job records its execute attempts and backoff sleeps into a
	// bounded per-job recorder; the spans ride back beside the result. Nil
	// recorder (untraced, or obs off) records nothing.
	var rec *trace.JobRecorder
	if job.Trace != nil && obs.EnabledIn(ctx) {
		rec = trace.NewJobRecorder(*job.Trace, p.opts.SpanBudget)
	}
	max := p.opts.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; attempt <= max; attempt++ {
		res.Attempts = attempt
		t0 := time.Now()
		run, err := p.attempt(ctx, job)
		attrs := map[string]string{"try": strconv.Itoa(attempt), "worker": strconv.Itoa(worker)}
		if err != nil {
			attrs["err"] = err.Error()
		}
		rec.Record("execute", "execute", t0, time.Since(t0), attrs)
		if err == nil {
			res.Run, res.Err = run, nil
			res.Spans, res.SpanDrops = rec.Drain()
			p.spanDrops.Add(int64(res.SpanDrops))
			return res
		}
		res.Err = err
		res.History = append(res.History, err.Error())
		if ctx.Err() != nil || attempt == max {
			break
		}
		p.retried.Add(1)
		t0 = time.Now()
		select {
		case <-time.After(p.backoff(job, attempt)):
		case <-ctx.Done():
			// The sweep died while we waited; the attempt's own error
			// stands as the job's cause of death.
		}
		rec.Record("backoff", "backoff", t0, time.Since(t0),
			map[string]string{"try": strconv.Itoa(attempt)})
	}
	if ctx.Err() == nil {
		res.Quarantined = true
		p.quarantined.Add(1)
	}
	res.Spans, res.SpanDrops = rec.Drain()
	p.spanDrops.Add(int64(res.SpanDrops))
	return res
}

// attempt is one isolated execution: its own recovery scope (so a panicking
// cell is retryable) and its own timeout budget.
func (p *Pool) attempt(ctx context.Context, job Job) (run *harness.Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			run, err = nil, fmt.Errorf("fleet: %s panicked: %v", job, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.opts.JobTimeout)
		defer cancel()
	}
	return p.opts.Execute(ctx, job)
}

// backoff computes the sleep before retrying a job after its attempt-th
// failure: base·2^(attempt-1) capped at the max, scaled by a deterministic
// jitter in [0.75, 1.25) hashed from (seed, job, attempt) so concurrent
// retries de-synchronize identically on every run.
func (p *Pool) backoff(job Job, attempt int) time.Duration {
	base := p.opts.RetryBaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.opts.RetryMaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.opts.RetrySeed))
	h.Write(buf[:])
	io.WriteString(h, job.String())
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	frac := float64(h.Sum64()>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// RunSweep fans the jobs out and blocks until every one has a result. The
// returned slice is the deterministic merge: results[i] corresponds to
// jobs[i] regardless of completion order. Cancellation mid-sweep converts
// the not-yet-finished cells into failed results carrying ctx's error; the
// slice is always fully populated.
func (p *Pool) RunSweep(ctx context.Context, jobs []Job) []Result {
	return RunSweep(ctx, p, jobs)
}

// RunSweep fans the jobs out over any Runner and blocks until every one has
// a result, merged back in submission order — the deterministic merge is a
// property of the merge step, not the backend, so a shard cluster inherits
// it unchanged.
func RunSweep(ctx context.Context, r Runner, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i, job := range jobs {
		i, job := i, job
		err := r.Start(ctx, job, nil, func(res Result) {
			results[i] = res
			wg.Done()
		})
		if err != nil {
			results[i] = Result{Job: job, Worker: -1, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return results
}

// Stats is a snapshot of the fleet counters, served by /metrics.
type Stats struct {
	Workers     int                       `json:"workers"`
	Queued      int64                     `json:"queued"`
	Running     int64                     `json:"running"`
	Done        int64                     `json:"done"`
	Failed      int64                     `json:"failed"`
	Retried     int64                     `json:"retried"`     // attempts beyond each job's first
	Quarantined int64                     `json:"quarantined"` // jobs that exhausted every attempt
	Utilization float64               `json:"utilization"` // busy worker-time / available worker-time since start
	Latency     obs.HistogramSnapshot `json:"latency"`     // wall-clock job latency, seconds
}

// Stats snapshots the counters.
func (p *Pool) Stats() Stats {
	elapsed := time.Since(p.start)
	util := 0.0
	if elapsed > 0 {
		util = float64(p.busy.Load()) / (float64(elapsed) * float64(p.opts.Workers))
	}
	queued := p.queued.Load()
	if queued < 0 { // transient submit/drain race on the gauge
		queued = 0
	}
	return Stats{
		Workers:     p.opts.Workers,
		Queued:      queued,
		Running:     p.running.Load(),
		Done:        p.done.Load(),
		Failed:      p.failed.Load(),
		Retried:     p.retried.Load(),
		Quarantined: p.quarantined.Load(),
		Utilization: util,
		Latency:     p.hist.Snapshot(),
	}
}

// RegisterMetrics exposes the pool's live counters on an obs registry under
// the greenweb_fleet_* names. Values are read from the pool's own atomics at
// scrape time — no shadow counters to keep in sync. Register on a
// per-server registry (not obs.Default) so multiple pools in one process
// (tests) do not fight over sources.
func (p *Pool) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("greenweb_fleet_workers",
		"Worker goroutines in the pool", func() float64 { return float64(p.opts.Workers) })
	reg.GaugeFunc("greenweb_fleet_queue_depth",
		"Jobs waiting in the queue", func() float64 {
			if q := p.queued.Load(); q > 0 {
				return float64(q)
			}
			return 0
		})
	reg.GaugeFunc("greenweb_fleet_running_jobs",
		"Jobs executing right now", func() float64 { return float64(p.running.Load()) })
	reg.CounterFunc("greenweb_fleet_jobs_done_total",
		"Jobs finished successfully", func() float64 { return float64(p.done.Load()) })
	reg.CounterFunc("greenweb_fleet_jobs_failed_total",
		"Jobs that ended in failure (including cancellation)", func() float64 { return float64(p.failed.Load()) })
	reg.CounterFunc("greenweb_fleet_retries_total",
		"Job attempts beyond each job's first", func() float64 { return float64(p.retried.Load()) })
	reg.CounterFunc("greenweb_fleet_quarantines_total",
		"Jobs that exhausted every allowed attempt", func() float64 { return float64(p.quarantined.Load()) })
	reg.CounterFunc("greenweb_fleet_span_drops_total",
		"Trace spans discarded to per-job span budgets", func() float64 { return float64(p.spanDrops.Load()) })
	reg.GaugeFunc("greenweb_fleet_utilization",
		"Busy worker-time over available worker-time since start", func() float64 { return p.Stats().Utilization })
	reg.AttachHistogram("greenweb_fleet_job_latency_seconds",
		"Wall-clock job latency in seconds (all attempts incl. backoff)", p.hist)
}
