package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fleetTraceDoc is the slice of the Chrome trace artifact these tests read.
type fleetTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		Sweep     string `json:"sweep"`
		SpanDrops int64  `json:"span_drops"`
	} `json:"otherData"`
}

// TestFleetTraceEndpoint runs a sweep and pins the distributed trace
// artifact's shape: admission + per-job queue-wait/execute/job spans, the
// sweep id in otherData, and nondecreasing rebased timestamps starting at 0.
func TestFleetTraceEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})
	ack := postSweep(t, srv, `{"apps":["Todo","Google"],"kinds":["Perf"],"phase":"micro"}`)
	id := ack["id"].(string)

	// ?fleet=1 waits for sweep completion, so one GET covers submit-to-done.
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/trace?fleet=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace?fleet=1 = %d: %s", resp.StatusCode, body)
	}
	var doc fleetTraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.Sweep != id {
		t.Errorf("otherData.sweep = %q, want %q", doc.OtherData.Sweep, id)
	}

	counts := map[string]int{}
	var lastTS int64
	sawZero := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		counts[ev.Name]++
		if ev.TS < lastTS {
			t.Fatalf("timestamps regress: %q at %d after %d", ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.TS == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Error("no event at rebased ts=0")
	}
	if counts["admission"] != 1 {
		t.Errorf("admission spans = %d, want 1", counts["admission"])
	}
	for _, name := range []string{"job", "queue-wait", "execute"} {
		if counts[name] != 2 {
			t.Errorf("%s spans = %d, want one per job (2)", name, counts[name])
		}
	}
}

// TestTracingOffReturnsNoFleetTrace: a manager with tracing disabled
// (greensrv -no-trace) answers the fleet-trace endpoint with the structured
// no_fleet_trace 404 — and the result stream is byte-identical to a traced
// server's, the PR's hard invariant.
func TestTracingOffReturnsNoFleetTrace(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 2})

	// Same sweep twice on one manager (sweep ids are per-manager sequential,
	// and the trace collector is process-global, so distinct servers would
	// collide on ids): first traced, then with tracing flipped off.
	const body = `{"apps":["Todo","BBC"],"kinds":["Perf","GreenWeb-U"],"phase":"micro"}`
	idOn := postSweep(t, srv, body)["id"].(string)
	m.SetTracing(false)
	t.Cleanup(func() { m.SetTracing(true) })
	idOff := postSweep(t, srv, body)["id"].(string)

	stream := func(id string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/results?deterministic=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	on, off := stream(idOn), stream(idOff)
	if on != off {
		t.Fatalf("tracing changed sweep bytes:\n--- tracing on\n%s--- tracing off\n%s", on, off)
	}

	resp, err := http.Get(srv.URL + "/v1/sweeps/" + idOff + "/trace?fleet=1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(b), "no_fleet_trace") {
		t.Fatalf("untraced fleet trace = %d %s, want structured no_fleet_trace 404", resp.StatusCode, b)
	}
}

// TestNodesEndpoint: a single-pool server still federates /v1/nodes — one
// always-up local row whose job count reflects finished work.
func TestNodesEndpoint(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 2})
	id := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf"],"phase":"micro"}`)["id"].(string)
	s, _ := m.Get(SweepID(id))
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never finished")
	}

	resp, err := http.Get(srv.URL + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/nodes = %d", resp.StatusCode)
	}
	var out struct {
		Nodes []NodeInfo `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != 1 {
		t.Fatalf("nodes = %+v, want one local row", out.Nodes)
	}
	n := out.Nodes[0]
	if n.Kind != "local" || !n.Up || n.Workers != 2 || n.Jobs < 1 {
		t.Errorf("node row = %+v, want up local node with finished jobs", n)
	}
}
