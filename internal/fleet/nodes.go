package fleet

// NodeInfo is one execution node's row in the GET /v1/nodes federation:
// identity, liveness, transport health (remote nodes), and work/trace
// accounting. The shard cluster fills every field it knows; a plain Pool
// reports itself as a single always-up local node, so the endpoint's shape
// does not depend on the topology.
type NodeInfo struct {
	ID      int    `json:"id"`
	Kind    string `json:"kind"` // "local" | "remote"
	Name    string `json:"name,omitempty"`
	Workers int    `json:"workers"`
	Up      bool   `json:"up"`
	Dead    bool   `json:"dead,omitempty"`

	// Transport health — remote nodes only.
	HeartbeatRTTMS  float64 `json:"heartbeat_rtt_ms,omitempty"`
	Reconnects      int64   `json:"reconnects,omitempty"`
	HeartbeatMisses int64   `json:"heartbeat_misses,omitempty"`
	// ClockOffsetUS is the handshake-estimated offset of the node's clock
	// from the server's (positive = node clock ahead), used to align the
	// node's trace spans.
	ClockOffsetUS int64 `json:"clock_offset_us,omitempty"`

	// Work accounting.
	QueueDepth int64 `json:"queue_depth"`
	Jobs       int64 `json:"jobs"`
	Steals     int64 `json:"steals,omitempty"`
	Rehomed    int64 `json:"rehomed,omitempty"`
	// SpanDrops counts trace spans this node's jobs discarded to budget
	// pressure (worker-side drops surface here even though the spans never
	// reached the server).
	SpanDrops int64 `json:"span_drops,omitempty"`
}

// NodeReporter is the optional Runner facet behind GET /v1/nodes. Both
// Pool and shard.Cluster implement it.
type NodeReporter interface {
	NodeInfos() []NodeInfo
}

// NodeInfos implements NodeReporter: a Pool is one always-up local node.
func (p *Pool) NodeInfos() []NodeInfo {
	s := p.Stats()
	return []NodeInfo{{
		ID:         0,
		Kind:       "local",
		Workers:    s.Workers,
		Up:         true,
		QueueDepth: s.Queued,
		Jobs:       s.Done + s.Failed,
		SpanDrops:  p.spanDrops.Load(),
	}}
}
