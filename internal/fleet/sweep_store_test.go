package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/wattwiseweb/greenweb/internal/store"
)

// getBody fetches a URL and returns status code + body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// storeServer stands up a manager + HTTP server over a durable store rooted
// at dir, returning a teardown that closes everything in order.
func storeServer(t *testing.T, dir string) (*httptest.Server, *Manager, func()) {
	t.Helper()
	pool := New(Options{Workers: 2})
	m := NewManager(context.Background(), pool)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.SetStore(st)
	srv := httptest.NewServer(NewServer(m))
	return srv, m, func() {
		srv.Close()
		pool.Close()
		st.Close()
	}
}

// getStatus decodes the (indented) status body into a map.
func getStatus(t *testing.T, srv *httptest.Server, id string) (int, map[string]any) {
	t.Helper()
	code, body := getBody(t, srv.URL+"/v1/sweeps/"+id)
	st := map[string]any{}
	if code == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("status body unparsable: %v\n%s", err, body)
		}
	}
	return code, st
}

// waitPersisted polls the status endpoint until the sweep reports durable.
func waitPersisted(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, st := getStatus(t, srv, id); st["persisted"] == true {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reported persisted", id)
}

// TestStoreReplayByteIdentical is the restart guarantee end to end: results
// streamed live, then replayed from disk by a fresh process, must be the
// same bytes.
func TestStoreReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	srv, _, shutdown := storeServer(t, dir)

	ack := postSweep(t, srv, `{"apps":["Todo","MSN"],"kinds":["Perf","GreenWeb-I"],"phase":"micro"}`)
	id := ack["id"].(string)
	waitPersisted(t, srv, id)

	code, live := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("live results = %d", code)
	}
	if n := strings.Count(live, "\n"); n != 4 {
		t.Fatalf("live stream has %d rows, want 4", n)
	}
	shutdown()

	// "Restart": a brand-new manager over the same directory.
	srv2, m2, shutdown2 := storeServer(t, dir)
	defer shutdown2()

	code, replayed := getBody(t, srv2.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("replayed results = %d", code)
	}
	if replayed != live {
		t.Fatalf("replay diverged from live stream:\n--- live\n%s--- replayed\n%s", live, replayed)
	}

	code, status := getStatus(t, srv2, id)
	if code != http.StatusOK || status["replayed"] != true || status["persisted"] != true {
		t.Fatalf("replayed status = %d %v, want replayed+persisted", code, status)
	}
	// Decision events are deliberately not persisted; the error must say so
	// with a machine-parsable code rather than pretend the sweep doesn't
	// exist. The trace endpoint shares the semantics.
	for _, ep := range []string{"/events", "/trace"} {
		code, body := getBody(t, srv2.URL+"/v1/sweeps/"+id+ep)
		if code != http.StatusNotFound || !strings.Contains(body, "not persisted") ||
			!strings.Contains(body, "replayed_no_trace") {
			t.Fatalf("replayed %s = %d %q, want structured 404 with code replayed_no_trace", ep, code, body)
		}
	}

	// The restarted manager must not reissue the persisted sweep's ID.
	ack2 := postSweep(t, srv2, `{"apps":["Todo"],"kinds":["Perf"],"phase":"micro"}`)
	if id2 := ack2["id"].(string); id2 == id {
		t.Fatalf("restarted manager reissued sweep ID %s", id)
	}
	s2, ok := m2.Get(SweepID(ack2["id"].(string)))
	if !ok {
		t.Fatal("restart-submitted sweep not registered")
	}
	<-s2.Done()
}

// TestStoreSurvivesManagerWithoutStore: managers without a store keep the
// PR 1–5 behaviour — no persisted field, 404 after restart.
func TestStoreSurvivesManagerWithoutStore(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	ack := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf"],"phase":"micro"}`)
	id := ack["id"].(string)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, st := getStatus(t, srv, id)
		if st["finished"] == true {
			if _, ok := st["persisted"]; ok {
				t.Fatalf("storeless sweep claims persistence: %v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeterministicResultsParam: ?deterministic=1 zeroes the latency_ms
// column on both the live stream and the store replay, so streams from
// different topologies (or across a restart) compare byte-for-byte. The CI
// remote-chaos smoke diffs exactly this.
func TestDeterministicResultsParam(t *testing.T) {
	dir := t.TempDir()
	srv, _, shutdown := storeServer(t, dir)
	ack := postSweep(t, srv, `{"apps":["Todo"],"kinds":["Perf","GreenWeb-U"],"phase":"micro"}`)
	id := ack["id"].(string)
	waitPersisted(t, srv, id)

	code, live := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results?deterministic=1")
	if code != http.StatusOK {
		t.Fatalf("live deterministic results = %d", code)
	}
	if !strings.Contains(live, `"latency_ms":0,`) || strings.Contains(live, `"latency_ms":0.`) {
		t.Fatalf("latency not zeroed in deterministic stream:\n%s", live)
	}
	code, raw := getBody(t, srv.URL+"/v1/sweeps/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("live results = %d", code)
	}
	if live == raw {
		t.Fatal("deterministic stream identical to raw stream; latency was never nonzero")
	}
	shutdown()

	// Fresh process over the same store: the replayed deterministic stream
	// must be the live deterministic bytes.
	srv2, _, shutdown2 := storeServer(t, dir)
	defer shutdown2()
	code, replay := getBody(t, srv2.URL+"/v1/sweeps/"+id+"/results?deterministic=1")
	if code != http.StatusOK {
		t.Fatalf("replayed deterministic results = %d", code)
	}
	if replay != live {
		t.Fatalf("store replay with deterministic=1 diverged from live stream:\n--- replay\n%s--- live\n%s", replay, live)
	}
}
