package qos

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

func TestTable1Defaults(t *testing.T) {
	// The paper's Table 1 values, exactly.
	if ContinuousTarget.TI != 16600*sim.Microsecond || ContinuousTarget.TU != 33300*sim.Microsecond {
		t.Fatalf("continuous target = %v", ContinuousTarget)
	}
	if SingleShortTarget.TI != 100*sim.Millisecond || SingleShortTarget.TU != 300*sim.Millisecond {
		t.Fatalf("single-short target = %v", SingleShortTarget)
	}
	if SingleLongTarget.TI != sim.Second || SingleLongTarget.TU != 10*sim.Second {
		t.Fatalf("single-long target = %v", SingleLongTarget)
	}
}

func TestDefaultTarget(t *testing.T) {
	if DefaultTarget(Continuous, Short) != ContinuousTarget {
		t.Fatal("continuous default wrong")
	}
	if DefaultTarget(Continuous, Long) != ContinuousTarget {
		t.Fatal("continuous ignores duration class")
	}
	if DefaultTarget(Single, Short) != SingleShortTarget {
		t.Fatal("single short default wrong")
	}
	if DefaultTarget(Single, Long) != SingleLongTarget {
		t.Fatal("single long default wrong")
	}
}

func TestTargetMagnitudesSeparated(t *testing.T) {
	// The paper argues the categories differ by orders of magnitude
	// (tens of ms vs hundreds of ms vs seconds).
	if ContinuousTarget.TI*5 > SingleShortTarget.TI {
		t.Fatal("continuous and single-short targets too close")
	}
	if SingleShortTarget.TI*5 > SingleLongTarget.TI {
		t.Fatal("single-short and single-long targets too close")
	}
}

func TestTargetValid(t *testing.T) {
	for _, tgt := range []Target{ContinuousTarget, SingleShortTarget, SingleLongTarget} {
		if !tgt.Valid() {
			t.Errorf("%v invalid", tgt)
		}
	}
	if (Target{TI: 0, TU: 10}).Valid() {
		t.Error("zero TI should be invalid")
	}
	if (Target{TI: 10, TU: 5}).Valid() {
		t.Error("TU < TI should be invalid")
	}
}

func TestScenarioDeadline(t *testing.T) {
	tgt := Target{TI: 10, TU: 20}
	if Imperceptible.Deadline(tgt) != 10 {
		t.Fatal("imperceptible deadline wrong")
	}
	if Usable.Deadline(tgt) != 20 {
		t.Fatal("usable deadline wrong")
	}
}

func TestStrings(t *testing.T) {
	if Single.String() != "single" || Continuous.String() != "continuous" {
		t.Fatal("Type strings wrong")
	}
	if Short.String() != "short" || Long.String() != "long" {
		t.Fatal("Duration strings wrong")
	}
	if Imperceptible.String() != "imperceptible" || Usable.String() != "usable" {
		t.Fatal("Scenario strings wrong")
	}
	a := Annotation{Event: "click", Type: Single, Target: SingleShortTarget}
	if a.String() != "onclick-qos: single (TI=100ms, TU=300ms)" {
		t.Fatalf("Annotation string = %q", a.String())
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	if rows[0].Type != Continuous || rows[1].Type != Single || rows[2].Type != Single {
		t.Fatal("Table1 types wrong")
	}
	if rows[0].Target != ContinuousTarget || rows[1].Target != SingleShortTarget || rows[2].Target != SingleLongTarget {
		t.Fatal("Table1 targets wrong")
	}
	// Loading appears only in the single-long row; moving only in continuous.
	if rows[2].Interactions != "L, T" || rows[0].Interactions != "T, M" {
		t.Fatal("Table1 interactions wrong")
	}
}
