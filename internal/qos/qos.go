// Package qos defines the paper's two QoS abstractions (Sec. 3): QoS type —
// whether user experience is judged by a single response frame or by every
// frame of a continuous sequence — and QoS target — the imperceptible (TI)
// and usable (TU) frame-latency levels. Table 1 of the paper fixes default
// targets per interaction category; those constants live here.
package qos

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Type is the QoS type abstraction.
type Type int

const (
	// Single: the QoS experience is determined by the latency of the one
	// response frame an interaction produces (e.g. tapping a search box,
	// page loading judged by the first meaningful frame).
	Single Type = iota
	// Continuous: the experience is determined by the latency of every
	// frame in a generated sequence (animations, scrolling).
	Continuous
)

func (t Type) String() string {
	switch t {
	case Single:
		return "single"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Duration classifies single-type interactions by expected response period
// (paper Sec. 3.3): lightweight interactions feel instant under 100 ms;
// heavyweight jobs are tolerated up to seconds.
type Duration int

const (
	// Short is a lightweight interaction (search box, toggle).
	Short Duration = iota
	// Long is a heavyweight job (page load, image filter, compression).
	Long
)

func (d Duration) String() string {
	if d == Long {
		return "long"
	}
	return "short"
}

// Target is the QoS target abstraction: the imperceptible and usable frame
// latencies for an event. TI is the level above which extra performance adds
// no perceptible value; TU is the level below which users deem the
// application unusable.
type Target struct {
	TI sim.Duration
	TU sim.Duration
}

func (t Target) String() string { return fmt.Sprintf("(TI=%v, TU=%v)", t.TI, t.TU) }

// Valid reports whether the target is physically meaningful.
func (t Target) Valid() bool { return t.TI > 0 && t.TU >= t.TI }

// Table 1 default targets.
var (
	// ContinuousTarget is (16.6, 33.3) ms — 60 and 30 FPS per frame.
	ContinuousTarget = Target{TI: 16600 * sim.Microsecond, TU: 33300 * sim.Microsecond}
	// SingleShortTarget is (100, 300) ms — instant-feel interactions.
	SingleShortTarget = Target{TI: 100 * sim.Millisecond, TU: 300 * sim.Millisecond}
	// SingleLongTarget is (1, 10) s — heavyweight jobs users wait on.
	SingleLongTarget = Target{TI: 1 * sim.Second, TU: 10 * sim.Second}
)

// DefaultTarget returns the Table 1 default for a type (and, for single,
// an expected duration class).
func DefaultTarget(t Type, d Duration) Target {
	if t == Continuous {
		return ContinuousTarget
	}
	if d == Long {
		return SingleLongTarget
	}
	return SingleShortTarget
}

// Scenario selects which half of the target the runtime optimizes for,
// matching the paper's two battery-driven usage scenarios (Sec. 7.1).
type Scenario int

const (
	// Imperceptible: battery is abundant; deliver TI.
	Imperceptible Scenario = iota
	// Usable: battery is tight; deliver TU.
	Usable
)

func (s Scenario) String() string {
	if s == Usable {
		return "usable"
	}
	return "imperceptible"
}

// Deadline returns the frame-latency bound the scenario requires.
func (s Scenario) Deadline(t Target) sim.Duration {
	if s == Usable {
		return t.TU
	}
	return t.TI
}

// Annotation is one resolved GreenWeb annotation: when Event fires on the
// annotated element, frames must meet Target under the active scenario.
type Annotation struct {
	Event    string // DOM event name, e.g. "touchstart"
	Type     Type
	Duration Duration // meaningful for Single with default targets
	Target   Target
	// Explicit records whether the developer overrode the Table 1 defaults
	// with absolute TI/TU values (third rule form in Table 2).
	Explicit bool
}

func (a Annotation) String() string {
	return fmt.Sprintf("on%s-qos: %s %v", a.Event, a.Type, a.Target)
}

// Category is a Table 1 row: interactions grouped by QoS type and target.
type Category struct {
	Name         string
	Type         Type
	Target       Target
	Interactions string // LTM letters that trigger it
	Description  string
}

// Table1 returns the paper's interaction taxonomy.
func Table1() []Category {
	return []Category{
		{
			Name:         "continuous",
			Type:         Continuous,
			Target:       ContinuousTarget,
			Interactions: "T, M",
			Description:  "QoS experience is evaluated by continuous frame latencies.",
		},
		{
			Name:         "single-short",
			Type:         Single,
			Target:       SingleShortTarget,
			Interactions: "T",
			Description:  "QoS experience is evaluated by single frame latency; users expect short response period.",
		},
		{
			Name:         "single-long",
			Type:         Single,
			Target:       SingleLongTarget,
			Interactions: "L, T",
			Description:  "QoS experience is evaluated by single frame latency; users expect long response period.",
		},
	}
}
