#!/usr/bin/env bash
# Regenerates BENCH_PR4.json: re-runs the PR 4 headline benchmarks and
# records them against the pre-PR baselines measured on the seed tree
# (commit f26a6a2, same machine class). Run from the repository root:
#
#   ./scripts/bench.sh
#
# The "before" numbers are frozen — they were measured once on the tree
# immediately before the hot-path overhaul and cannot be regenerated from a
# checkout that contains it. The "after" numbers come from the run below.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3s}"
OUT="${OUT:-BENCH_PR4.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkCascadeLargestApp' -benchmem -benchtime="$BENCHTIME" ./internal/css/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkSelect' -benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkExecuteCell' -benchmem -benchtime="$BENCHTIME" ./internal/harness/ | tee -a "$RAW" >&2

# Pre-PR baselines (seed tree, go1.24, linux/amd64).
declare -A BEFORE_NS=(
  [BenchmarkCascadeLargestApp]=89176
  [BenchmarkSelectSteadyState]=2222
  [BenchmarkSelectAfterFeedback]=3364
  [BenchmarkExecuteCellWarmFull]=1543287
)
declare -A BEFORE_B=(
  [BenchmarkCascadeLargestApp]=35952
  [BenchmarkSelectSteadyState]=2816
  [BenchmarkSelectAfterFeedback]=4135
  [BenchmarkExecuteCellWarmFull]=877513
)
declare -A BEFORE_ALLOCS=(
  [BenchmarkCascadeLargestApp]=675
  [BenchmarkSelectSteadyState]=63
  [BenchmarkSelectAfterFeedback]=106
  [BenchmarkExecuteCellWarmFull]=9699
)

{
  echo '{'
  echo '  "pr": 4,'
  echo '  "title": "parse-once asset cache, indexed CSS cascade, memoized DVFS sweep",'
  echo '  "before_commit": "f26a6a2",'
  echo '  "benchtime": "'"$BENCHTIME"'",'
  echo '  "benchmarks": ['
  first=1
  while read -r name _ ns _ bytes _ allocs _; do
    name="${name%-*}" # strip -GOMAXPROCS suffix
    [ "$first" = 1 ] || echo ','
    first=0
    bns="${BEFORE_NS[$name]:-null}"
    bb="${BEFORE_B[$name]:-null}"
    ba="${BEFORE_ALLOCS[$name]:-null}"
    if [ "$bns" != null ]; then
      # improvement = (before - after) / before, in percent
      imp=$(awk -v b="$bns" -v a="$ns" 'BEGIN{printf "%.1f", (b-a)/b*100}')
      speedup=$(awk -v b="$bns" -v a="$ns" 'BEGIN{printf "%.2f", b/a}')
    else
      imp=null speedup=null
    fi
    printf '    {"name": "%s", "before": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}, "after": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}, "improvement_pct": %s, "speedup": %s}' \
      "$name" "$bns" "$bb" "$ba" "$ns" "$bytes" "$allocs" "$imp" "$speedup"
  done < <(grep -E '^Benchmark' "$RAW")
  echo
  echo '  ]'
  echo '}'
} > "$OUT"

echo "wrote $OUT" >&2
