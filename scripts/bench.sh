#!/usr/bin/env bash
# Regenerates BENCH_PR4.json, BENCH_PR6.json, and BENCH_PR7.json. Run from
# the repository root:
#
#   ./scripts/bench.sh            # all
#   ./scripts/bench.sh pr4        # micro-benchmarks only
#   ./scripts/bench.sh pr6        # greenload throughput only
#   ./scripts/bench.sh pr7        # bytecode-VM ablation only
#   ./scripts/bench.sh pr9        # pipeline-parallel rendering only
#   ./scripts/bench.sh pr10       # distributed-tracing overhead only
#
# PR 4: re-runs the headline micro-benchmarks and records them against the
# frozen pre-PR baselines (measured once on the seed tree, commit f26a6a2,
# same machine class — they cannot be regenerated from a checkout containing
# the overhaul).
#
# PR 6: boots a live greensrv at 1 node and at 4 nodes, drives each with
# cmd/greenload, and records sweeps/sec plus p99 end-to-end latency.
#
# PR 7: runs the script-dominated warm ExecuteCell cell on the bytecode VM
# and on the tree-walking interpreter (-no-vm path), plus the engine
# micro-benchmarks and the one-time compile cost the asset cache amortizes.
#
# PR 9: runs the DOM-heavy SPA cell serially and stage-parallel (wall-clock
# pair), plus the modeled virtual-time numbers — frame-latency improvement
# from stage sharding, and GreenWeb-I energy at fixed QoS with and without
# the per-stage configuration dimension.
#
# PR 10: drives identical greenload runs against a greensrv with fleet
# tracing on and with -no-trace, and records the throughput delta (the
# tracing tax must stay under 3%) plus the traced run's per-phase breakdown.
set -euo pipefail
cd "$(dirname "$0")/.."

WHAT="${1:-all}"

BENCHTIME="${BENCHTIME:-3s}"
OUT="${OUT:-BENCH_PR4.json}"
OUT6="${OUT6:-BENCH_PR6.json}"
OUT7="${OUT7:-BENCH_PR7.json}"
OUT9="${OUT9:-BENCH_PR9.json}"
OUT10="${OUT10:-BENCH_PR10.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# -------------------------------------------------------------------------
# PR 7: bytecode VM vs tree-walking interpreter.
# -------------------------------------------------------------------------
run_pr7() {
  local raw7
  raw7="$(mktemp)"
  echo "running VM ablation benchmarks (benchtime=$BENCHTIME)..." >&2
  go test -run '^$' -bench 'BenchmarkExecuteCellWarmScript' -benchmem \
    -benchtime="$BENCHTIME" ./internal/harness/ | tee -a "$raw7" >&2
  go test -run '^$' -bench 'BenchmarkVMFib|BenchmarkVMLoop|BenchmarkInterpFib|BenchmarkInterpLoop|BenchmarkVMCompile' \
    -benchmem -benchtime="$BENCHTIME" ./internal/js/ | tee -a "$raw7" >&2

  python3 - "$raw7" > "$OUT7" <<'PY'
import json, re, sys
rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op', line)
    if not m:
        m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op', line)
        if not m:
            continue
        rows[m.group(1)] = {"ns_op": float(m.group(2))}
        continue
    rows[m.group(1)] = {"ns_op": float(m.group(2)),
                        "bytes_op": float(m.group(3)),
                        "allocs_op": float(m.group(4))}
def ratio(a, b):
    return round(rows[a]["ns_op"] / rows[b]["ns_op"], 2) if a in rows and b in rows else None
out = {
    "pr": 7,
    "title": "bytecode VM for internal/js with metering parity",
    "workload": ("warm ExecuteCell on a script-dominated cell (inline hash kernel, "
                 "10 taps, GreenWeb-U full trace); VM vs -no-vm outputs are "
                 "byte-identical (CI diffs report and fault sweep)"),
    "benchmarks": [dict(name=k, **v) for k, v in sorted(rows.items())],
    "speedup_execute_cell_warm_script": ratio("BenchmarkExecuteCellWarmScriptNoVM",
                                              "BenchmarkExecuteCellWarmScriptVM"),
    "speedup_fib": ratio("BenchmarkInterpFib", "BenchmarkVMFib"),
    "speedup_loop": ratio("BenchmarkInterpLoop", "BenchmarkVMLoop"),
}
json.dump(out, sys.stdout, indent=2)
sys.stdout.write("\n")
PY
  rm -f "$raw7"
  echo "wrote $OUT7" >&2
}

# -------------------------------------------------------------------------
# PR 9: pipeline-parallel rendering (stage-split style/layout/paint).
# -------------------------------------------------------------------------
run_pr9() {
  local raw9 metrics9
  raw9="$(mktemp)"
  metrics9="$(mktemp)"
  echo "running staged-render benchmarks (benchtime=$BENCHTIME)..." >&2
  go test -run '^$' -bench 'BenchmarkExecuteCellWarmSPA' -benchmem \
    -benchtime="$BENCHTIME" ./internal/harness/ | tee -a "$raw9" >&2
  echo "computing modeled virtual-time metrics..." >&2
  GREENWEB_PR9_OUT="$metrics9" go test -run 'TestPR9Metrics' -count=1 ./internal/harness/ >&2

  python3 - "$raw9" "$metrics9" > "$OUT9" <<'PY'
import json, re, sys
rows = {}
for line in open(sys.argv[1]):
    m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) B/op\s+([\d.]+) allocs/op', line)
    if not m:
        continue
    rows[m.group(1)] = {"ns_op": float(m.group(2)),
                        "bytes_op": float(m.group(3)),
                        "allocs_op": float(m.group(4))}
modeled = json.load(open(sys.argv[2]))
out = {
    "pr": 9,
    "title": "pipeline-parallel rendering: stage-split style/layout/paint on heterogeneous cores",
    "workload": ("warm ExecuteCell on the DOM-heavy SPA-Feed cell (220 components, "
                 "~2.2k nodes, state-driven rerenders), serial vs 4 stage cores; "
                 "serial mode is byte-identical to the pre-staging engine "
                 "(CI diffs report and fault sweep)"),
    "benchmarks": [dict(name=k, **v) for k, v in sorted(rows.items())],
    "modeled": modeled,
    "frame_latency_improvement": round(modeled["frame_latency_improvement"], 2),
    "stage_vector_energy_saving_pct": round(
        100.0 * (1 - modeled["energy_stage_vector_j"] / modeled["energy_uniform_j"]), 3),
}
json.dump(out, sys.stdout, indent=2)
sys.stdout.write("\n")
PY
  rm -f "$raw9" "$metrics9"
  echo "wrote $OUT9" >&2
}

# -------------------------------------------------------------------------
# PR 10: fleet-tracing overhead ablation (tracing on vs -no-trace).
# -------------------------------------------------------------------------
run_pr10() {
  local bin_srv bin_load pid addr=127.0.0.1:18109
  bin_srv="$(mktemp -u)" bin_load="$(mktemp -u)"
  go build -o "$bin_srv" ./cmd/greensrv
  go build -o "$bin_load" ./cmd/greenload

  # One load run against a fresh 2-node in-process server; extra server
  # flags (e.g. -no-trace) come after the report path. A discarded warmup
  # pass precedes the measured one so neither mode pays first-run costs
  # (page cache, asset parse) inside its measurement. The traced run
  # samples fleet traces so the report carries the phase breakdown.
  load_traced() {
    local report=$1 sample=$2; shift 2
    "$bin_srv" -addr "$addr" -nodes 2 -workers 2 -admit-queue 1024 \
      "$@" >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 50); do
      curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
      sleep 0.1
    done
    "$bin_load" -addr "http://$addr" \
      -sweeps "${WARM_SWEEPS:-20}" -concurrency "${LOAD_CONC:-12}" \
      -apps Todo,MSN -kinds Perf,GreenWeb-I -phase micro \
      -client-id bench-warm -json /dev/null >/dev/null 2>&1
    "$bin_load" -addr "http://$addr" \
      -sweeps "${LOAD_SWEEPS:-120}" -concurrency "${LOAD_CONC:-12}" \
      -apps Todo,MSN -kinds Perf,GreenWeb-I -phase micro \
      -client-id bench -trace-sample "$sample" -json "$report" >&2
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  }

  # Machine noise on shared runners dwarfs the tracing tax, so measure
  # interleaved best-of-N per mode rather than one pair.
  local reps="${BENCH_REPS:-3}" i files=()
  for i in $(seq 1 "$reps"); do
    local ron roff
    ron="$(mktemp)" roff="$(mktemp)"
    echo "rep $i/$reps: greenload vs traced greensrv..." >&2
    load_traced "$ron" 20
    echo "rep $i/$reps: greenload vs greensrv -no-trace..." >&2
    load_traced "$roff" 0 -no-trace
    files+=("$ron" "$roff")
  done

  python3 - "${files[@]}" > "$OUT10" <<'PY'
import json, sys
runs = [json.load(open(p)) for p in sys.argv[1:]]
ons, offs = runs[0::2], runs[1::2]
# Best-of-N throughput per mode; the best traced run also supplies the
# phase-breakdown quantiles.
on = max(ons, key=lambda r: r["sweeps_per_sec"])
off = max(offs, key=lambda r: r["sweeps_per_sec"])
def row(mode, r):
    out = {
        "mode": mode, "nodes": 2, "workers_per_node": 2,
        "sweeps": r["sweeps"], "concurrency": 12,
        "sweeps_per_sec": r["sweeps_per_sec"],
        "jobs_per_sec": r["jobs_per_sec"],
        "e2e_p50_ms": r["e2e_ms"]["p50"],
        "e2e_p99_ms": r["e2e_ms"]["p99"],
        "span_drops": r.get("span_drops", 0),
    }
    if r.get("trace_sampled"):
        out["trace_sampled"] = r["trace_sampled"]
        for phase in ("queue_ms", "execute_ms"):
            if r.get(phase):
                out[phase] = r[phase]
    return out
delta = 100.0 * (off["sweeps_per_sec"] - on["sweeps_per_sec"]) / off["sweeps_per_sec"]
out = {
    "pr": 10,
    "title": "fleet-wide distributed tracing, structured logging, worker health surface",
    "workload": ("greenload micro-phase sweeps (Todo,MSN x Perf,GreenWeb-I) against a "
                 "2-node greensrv, fleet tracing on (with 20 sampled fleet traces) vs "
                 "-no-trace; sweep bytes are identical either way (CI cmps them)"),
    "reps_per_mode": len(ons),
    "rows": [row("tracing", on), row("no-trace", off)],
    "tracing_overhead_pct": round(delta, 2),
    "overhead_budget_pct": 3.0,
    "within_budget": delta < 3.0,
}
json.dump(out, sys.stdout, indent=2)
sys.stdout.write("\n")
PY
  rm -f "${files[@]}" "$bin_srv" "$bin_load"
  echo "wrote $OUT10" >&2
}

if [ "$WHAT" = pr7 ]; then run_pr7; exit 0; fi
if [ "$WHAT" = pr9 ]; then run_pr9; exit 0; fi
if [ "$WHAT" = pr10 ]; then run_pr10; exit 0; fi

# -------------------------------------------------------------------------
# PR 6: greenload throughput at 1 vs 4 nodes.
# -------------------------------------------------------------------------
run_pr6() {
  local bin_srv bin_load sdir pid addr=127.0.0.1:18099
  bin_srv="$(mktemp -u)" bin_load="$(mktemp -u)"
  go build -o "$bin_srv" ./cmd/greensrv
  go build -o "$bin_load" ./cmd/greenload

  # One load run against a fresh server at the given node count; emits the
  # greenload JSON report path.
  load_at() {
    local nodes=$1 report=$2
    sdir="$(mktemp -d)"
    "$bin_srv" -addr "$addr" -nodes "$nodes" -workers 2 -store "$sdir" \
      -admit-queue 1024 >/dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 50); do
      curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
      sleep 0.1
    done
    "$bin_load" -addr "http://$addr" \
      -sweeps "${LOAD_SWEEPS:-120}" -concurrency "${LOAD_CONC:-12}" \
      -apps Todo,MSN -kinds Perf,GreenWeb-I -phase micro \
      -client-id bench -wait-persisted -json "$report" >&2
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    rm -rf "$sdir"
  }

  local r1 r4
  r1="$(mktemp)" r4="$(mktemp)"
  echo "greenload vs 1-node greensrv..." >&2
  load_at 1 "$r1"
  echo "greenload vs 4-node greensrv..." >&2
  load_at 4 "$r4"

  python3 - "$r1" "$r4" > "$OUT6" <<'PY'
import json, sys
one, four = (json.load(open(p)) for p in sys.argv[1:3])
def row(nodes, r):
    return {
        "nodes": nodes, "workers_per_node": 2,
        "sweeps": r["sweeps"], "concurrency": 12,
        "sweeps_per_sec": r["sweeps_per_sec"],
        "jobs_per_sec": r["jobs_per_sec"],
        "e2e_p50_ms": r["e2e_ms"]["p50"],
        "e2e_p99_ms": r["e2e_ms"]["p99"],
        "submit_p99_ms": r["submit_ms"]["p99"],
        "rejections": r["rejections"],
    }
out = {
    "pr": 6,
    "title": "sharded multi-node fleet, durable sweep WAL, admission control",
    "workload": "greenload micro-phase sweeps (Todo,MSN x Perf,GreenWeb-I), -wait-persisted, WAL store on tmpfs-or-disk",
    "rows": [row(1, one), row(4, four)],
    "speedup_sweeps_per_sec": round(four["sweeps_per_sec"] / one["sweeps_per_sec"], 2),
}
json.dump(out, sys.stdout, indent=2)
sys.stdout.write("\n")
PY
  rm -f "$r1" "$r4" "$bin_srv" "$bin_load"
  echo "wrote $OUT6" >&2
}

if [ "$WHAT" = pr6 ]; then run_pr6; exit 0; fi

echo "running benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkCascadeLargestApp' -benchmem -benchtime="$BENCHTIME" ./internal/css/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkSelect' -benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkExecuteCell' -benchmem -benchtime="$BENCHTIME" ./internal/harness/ | tee -a "$RAW" >&2

# Pre-PR baselines (seed tree, go1.24, linux/amd64).
declare -A BEFORE_NS=(
  [BenchmarkCascadeLargestApp]=89176
  [BenchmarkSelectSteadyState]=2222
  [BenchmarkSelectAfterFeedback]=3364
  [BenchmarkExecuteCellWarmFull]=1543287
)
declare -A BEFORE_B=(
  [BenchmarkCascadeLargestApp]=35952
  [BenchmarkSelectSteadyState]=2816
  [BenchmarkSelectAfterFeedback]=4135
  [BenchmarkExecuteCellWarmFull]=877513
)
declare -A BEFORE_ALLOCS=(
  [BenchmarkCascadeLargestApp]=675
  [BenchmarkSelectSteadyState]=63
  [BenchmarkSelectAfterFeedback]=106
  [BenchmarkExecuteCellWarmFull]=9699
)

{
  echo '{'
  echo '  "pr": 4,'
  echo '  "title": "parse-once asset cache, indexed CSS cascade, memoized DVFS sweep",'
  echo '  "before_commit": "f26a6a2",'
  echo '  "benchtime": "'"$BENCHTIME"'",'
  echo '  "benchmarks": ['
  first=1
  while read -r name _ ns _ bytes _ allocs _; do
    name="${name%-*}" # strip -GOMAXPROCS suffix
    [ "$first" = 1 ] || echo ','
    first=0
    bns="${BEFORE_NS[$name]:-null}"
    bb="${BEFORE_B[$name]:-null}"
    ba="${BEFORE_ALLOCS[$name]:-null}"
    if [ "$bns" != null ]; then
      # improvement = (before - after) / before, in percent
      imp=$(awk -v b="$bns" -v a="$ns" 'BEGIN{printf "%.1f", (b-a)/b*100}')
      speedup=$(awk -v b="$bns" -v a="$ns" 'BEGIN{printf "%.2f", b/a}')
    else
      imp=null speedup=null
    fi
    printf '    {"name": "%s", "before": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}, "after": {"ns_op": %s, "bytes_op": %s, "allocs_op": %s}, "improvement_pct": %s, "speedup": %s}' \
      "$name" "$bns" "$bb" "$ba" "$ns" "$bytes" "$allocs" "$imp" "$speedup"
  done < <(grep -E '^Benchmark' "$RAW")
  echo
  echo '  ]'
  echo '}'
} > "$OUT"

echo "wrote $OUT" >&2

if [ "$WHAT" != pr4 ]; then
  run_pr6
  run_pr7
fi
