// Package greenweb is the public API of the GreenWeb reproduction: CSS
// language extensions for expressing user quality-of-service expectations
// (QoS type and QoS target) in mobile Web applications, a browser runtime
// that schedules an ARM big.LITTLE processor per frame to meet those
// expectations with minimal energy, and the AUTOGREEN automatic annotator —
// per "GreenWeb: Language Extensions for Energy-Efficient Mobile Web
// Computing" (Zhu & Reddi, PLDI 2016).
//
// A Session loads an HTML application (whose style sheets may carry
// GreenWeb `:QoS` rules) into a simulated browser engine over a simulated
// Exynos 5410-class asymmetric CPU, drives user interactions against it,
// and measures frame latencies, QoS violations, and CPU energy:
//
//	s, _ := greenweb.Open(pageHTML, greenweb.GreenWebPolicy(greenweb.Imperceptible))
//	s.Tap("menu")
//	s.Settle()
//	fmt.Println(s.Energy(), s.Violation(greenweb.Imperceptible))
//
// Policies select the CPU governor: the GreenWeb runtime under either
// usage scenario, or the Perf/Interactive/Ondemand/Powersave baselines.
package greenweb

import (
	"fmt"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/autogreen"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/core"
	"github.com/wattwiseweb/greenweb/internal/css"
	"github.com/wattwiseweb/greenweb/internal/governor"
	"github.com/wattwiseweb/greenweb/internal/metrics"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

// Scenario selects which QoS target the runtime optimizes for, following
// the paper's battery-driven usage scenarios.
type Scenario = qos.Scenario

// The two usage scenarios (paper Sec. 7.1).
const (
	// Imperceptible: battery is abundant; deliver the TI target.
	Imperceptible = qos.Imperceptible
	// Usable: battery is tight; deliver the TU target.
	Usable = qos.Usable
)

// Policy names a CPU scheduling policy for a Session.
type Policy struct {
	name     string
	scenario Scenario
	build    func(p Policy) browser.Governor
}

// Name reports the policy's display name.
func (p Policy) Name() string { return p.name }

// GreenWebPolicy is the paper's contribution: the annotation-driven runtime
// under the given scenario.
func GreenWebPolicy(s Scenario) Policy {
	suffix := "I"
	if s == Usable {
		suffix = "U"
	}
	return Policy{
		name:     "GreenWeb-" + suffix,
		scenario: s,
		build: func(p Policy) browser.Governor {
			return core.New(core.DefaultOptions(p.scenario))
		},
	}
}

// PerfPolicy pins peak performance (best QoS, worst energy).
func PerfPolicy() Policy {
	return Policy{name: "Perf", build: func(Policy) browser.Governor { return governor.NewPerf() }}
}

// InteractivePolicy models Android's default interactive governor.
func InteractivePolicy() Policy {
	return Policy{name: "Interactive", build: func(Policy) browser.Governor {
		return governor.NewInteractive(governor.DefaultInteractiveParams())
	}}
}

// OndemandPolicy models the classic Linux ondemand governor.
func OndemandPolicy() Policy {
	return Policy{name: "Ondemand", build: func(Policy) browser.Governor { return governor.NewOndemand() }}
}

// PowersavePolicy pins the lowest-power configuration.
func PowersavePolicy() Policy {
	return Policy{name: "Powersave", build: func(Policy) browser.Governor { return governor.NewPowersave() }}
}

// EBSPolicy models annotation-free event-based scheduling (the related-work
// system of paper Sec. 9), which guesses user tolerance from measured event
// latency instead of reading annotations.
func EBSPolicy() Policy {
	return Policy{name: "EBS", build: func(Policy) browser.Governor { return governor.NewEBS() }}
}

// Session is one loaded application on one simulated device.
type Session struct {
	simu   *sim.Simulator
	cpu    *acmp.CPU
	engine *browser.Engine
	gov    browser.Governor
	colI   *metrics.Collector
	colU   *metrics.Collector
	policy Policy
}

// Open loads the HTML application under the policy and runs the loading
// phase to completion (through the first meaningful frame).
func Open(html string, policy Policy) (*Session, error) {
	if policy.build == nil {
		return nil, fmt.Errorf("greenweb: zero Policy; use GreenWebPolicy or a baseline constructor")
	}
	s := &Session{simu: sim.New(), policy: policy}
	s.cpu = acmp.NewCPU(s.simu, acmp.DefaultPower())
	s.engine = browser.New(s.simu, s.cpu, nil)
	s.gov = policy.build(policy)
	s.engine.SetGovernor(s.gov)
	if _, err := s.engine.LoadPage(html); err != nil {
		return nil, err
	}
	s.colI = metrics.NewCollector(s.engine, Imperceptible)
	s.colU = metrics.NewCollector(s.engine, Usable)
	s.Settle()
	return s, nil
}

// Now reports the session's virtual time.
func (s *Session) Now() sim.Time { return s.simu.Now() }

// Tap performs a tapping interaction (touchstart, touchend, click) on the
// element with the given id, starting a small delay from now.
func (s *Session) Tap(targetID string) {
	at := s.simu.Now().Add(10 * sim.Millisecond)
	s.engine.Inject(at, "touchstart", targetID, nil)
	s.engine.Inject(at.Add(80*sim.Millisecond), "touchend", targetID, nil)
	s.engine.Inject(at.Add(85*sim.Millisecond), "click", targetID, nil)
	s.simu.RunUntil(at.Add(86 * sim.Millisecond))
}

// Swipe performs a moving interaction: touchstart, n touchmove samples gap
// apart, touchend.
func (s *Session) Swipe(targetID string, n int, gap sim.Duration) {
	at := s.simu.Now().Add(10 * sim.Millisecond)
	s.engine.Inject(at, "touchstart", targetID, nil)
	for i := 0; i < n; i++ {
		s.engine.Inject(at.Add(sim.Duration(i+1)*gap), "touchmove", targetID,
			map[string]float64{"deltaY": 24})
	}
	s.engine.Inject(at.Add(sim.Duration(n+1)*gap), "touchend", targetID, nil)
	s.simu.RunUntil(at.Add(sim.Duration(n+1) * gap))
}

// RunFor advances virtual time by d, processing whatever is scheduled.
func (s *Session) RunFor(d sim.Duration) { s.simu.RunFor(d) }

// Settle runs until the engine is quiescent (all frames produced, no
// pending animation), bounded at 60 virtual seconds.
func (s *Session) Settle() {
	deadline := s.simu.Now().Add(60 * sim.Second)
	for s.simu.Now() < deadline {
		s.simu.RunUntil(s.simu.Now().Add(20 * sim.Millisecond))
		if s.engine.Quiescent() && !s.cpu.Busy() {
			return
		}
	}
}

// Energy reports total CPU energy consumed so far, in joules.
func (s *Session) Energy() float64 { return float64(s.cpu.Energy()) }

// Frames reports the frames produced so far.
func (s *Session) Frames() []browser.FrameResult { return s.engine.Results() }

// Violation reports the run's QoS violation percentage (geometric mean
// over annotated frames) judged under the given scenario.
func (s *Session) Violation(sc Scenario) float64 {
	if sc == Usable {
		return s.colU.Violation()
	}
	return s.colI.Violation()
}

// LoadLatency reports the first-meaningful-frame latency of the load.
func (s *Session) LoadLatency() sim.Duration {
	frames := s.engine.Results()
	if len(frames) == 0 || len(frames[0].Inputs) == 0 {
		return 0
	}
	return frames[0].Inputs[0].Latency
}

// Config reports the current CPU execution configuration as a string
// (e.g. "big@1800MHz").
func (s *Session) Config() string { return s.cpu.Config().String() }

// Residency reports the fraction of time spent per configuration.
func (s *Session) Residency() map[string]float64 {
	out := map[string]float64{}
	var total float64
	res := s.cpu.Residency()
	for _, d := range res {
		total += d.Seconds()
	}
	if total == 0 {
		return out
	}
	for cfg, d := range res {
		out[cfg.String()] = d.Seconds() / total
	}
	return out
}

// Switches reports configuration changes so far (frequency switches and
// cluster migrations).
func (s *Session) Switches() (freqSwitches, migrations int) {
	st := s.cpu.Stats()
	return st.FreqSwitches, st.Migrations
}

// ConsoleLines returns the application's console output.
func (s *Session) ConsoleLines() []string { return s.engine.ConsoleLines() }

// ScriptErrors returns any script failures (logged, not fatal).
func (s *Session) ScriptErrors() []error { return s.engine.ScriptErrors() }

// Stop releases governor timers so the simulation can drain; the session
// remains readable.
func (s *Session) Stop() {
	if st, ok := s.gov.(interface{ Stop() }); ok {
		st.Stop()
	}
}

// Annotations lists the GreenWeb annotations that resolve against the
// loaded document, as human-readable strings.
func (s *Session) Annotations() []string {
	var out []string
	for _, na := range s.engine.Annotations().Annotations(s.engine.Doc()) {
		out = append(out, na.Node.Path()+" { "+na.Annotation.String()+" }")
	}
	return out
}

// ---- Annotation tooling ----

// AutoAnnotate runs AUTOGREEN on an application: it discovers every
// (element, event) listener pair, profiles each callback to classify its
// QoS type, and returns the HTML with generated GreenWeb rules injected.
func AutoAnnotate(html string) (annotated string, report *autogreen.Report, err error) {
	return autogreen.Annotate(html)
}

// Analyze runs AUTOGREEN's discovery and profiling phases without
// modifying the source.
func Analyze(html string) (*autogreen.Report, error) { return autogreen.Analyze(html) }

// CheckAnnotations parses CSS text and returns the GreenWeb annotations it
// declares, reporting malformed QoS values as errors. Useful for linting
// hand-written rules.
func CheckAnnotations(cssText string) ([]string, []error) {
	sheet, errs := css.Parse(cssText)
	var out []string
	for _, rule := range sheet.Rules {
		for _, d := range rule.Decls {
			ev, ok := css.IsQoSProperty(d.Property)
			if !ok {
				continue
			}
			ann, err := css.ParseQoSValue(ev, d.Value)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			for _, sel := range rule.Selectors {
				if !sel.HasQoS() {
					errs = append(errs, fmt.Errorf("greenweb: rule %q declares %s but its selector lacks :QoS", sel.String(), d.Property))
					continue
				}
				out = append(out, sel.String()+" { "+ann.String()+" }")
			}
		}
	}
	return out, errs
}
