package greenweb

import (
	"strings"
	"testing"

	"github.com/wattwiseweb/greenweb/internal/sim"
)

const demoPage = `<html><head><style>
		#panel { width: 100px; transition: width 200ms; }
		body:QoS { onload-qos: single, long; }
		div#btn:QoS { onclick-qos: single, short; }
		div#panel:QoS { ontouchstart-qos: continuous; }
	</style></head>
	<body>
		<div id="btn">open</div>
		<div id="panel">panel</div>
		<script>
			var opens = 0;
			document.getElementById("btn").addEventListener("click", function(e) {
				opens++;
				work(40);
				e.target.textContent = "opened " + opens;
			});
			document.getElementById("panel").addEventListener("touchstart", function(e) {
				document.getElementById("panel").style.width = "400px";
			});
		</script>
	</body></html>`

func TestOpenAndLoad(t *testing.T) {
	s, err := Open(demoPage, PerfPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if s.LoadLatency() <= 0 {
		t.Fatal("no load latency")
	}
	if len(s.Frames()) == 0 {
		t.Fatal("no first meaningful frame")
	}
	if len(s.ScriptErrors()) > 0 {
		t.Fatalf("script errors: %v", s.ScriptErrors())
	}
	if s.Config() != "big@1800MHz" {
		t.Fatalf("Perf config = %s", s.Config())
	}
}

func TestTapInteraction(t *testing.T) {
	s, err := Open(demoPage, GreenWebPolicy(Imperceptible))
	if err != nil {
		t.Fatal(err)
	}
	before := len(s.Frames())
	s.Tap("btn")
	s.Settle()
	if len(s.Frames()) <= before {
		t.Fatal("tap produced no frame")
	}
	if s.Energy() <= 0 {
		t.Fatal("no energy measured")
	}
}

func TestSwipeTriggersTransition(t *testing.T) {
	s, err := Open(demoPage, GreenWebPolicy(Usable))
	if err != nil {
		t.Fatal(err)
	}
	before := len(s.Frames())
	s.Swipe("panel", 3, 16*sim.Millisecond)
	s.Settle()
	// The touchstart triggers a 200 ms CSS transition: several frames.
	if len(s.Frames())-before < 5 {
		t.Fatalf("transition frames = %d", len(s.Frames())-before)
	}
}

func TestPolicyComparison(t *testing.T) {
	run := func(p Policy) float64 {
		s, err := Open(demoPage, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			s.Tap("btn")
			s.RunFor(400 * sim.Millisecond)
		}
		s.Settle()
		s.Stop()
		return s.Energy()
	}
	perf := run(PerfPolicy())
	gw := run(GreenWebPolicy(Usable))
	powersave := run(PowersavePolicy())
	if gw >= perf {
		t.Fatalf("GreenWeb-U (%.3f J) >= Perf (%.3f J)", gw, perf)
	}
	if powersave >= perf {
		t.Fatalf("Powersave (%.3f J) >= Perf (%.3f J)", powersave, perf)
	}
}

func TestViolationJudging(t *testing.T) {
	s, err := Open(demoPage, PowersavePolicy())
	if err != nil {
		t.Fatal(err)
	}
	s.Tap("btn")
	s.Settle()
	// Powersave never violates the usable-scenario targets for this tiny
	// app, and violations are never negative.
	if v := s.Violation(Usable); v < 0 {
		t.Fatalf("violation = %v", v)
	}
	if vi := s.Violation(Imperceptible); vi < s.Violation(Usable) {
		t.Fatal("imperceptible judging must be at least as strict")
	}
}

func TestResidencyAndSwitches(t *testing.T) {
	s, err := Open(demoPage, GreenWebPolicy(Imperceptible))
	if err != nil {
		t.Fatal(err)
	}
	s.Tap("btn")
	s.Settle()
	res := s.Residency()
	var total float64
	for _, share := range res {
		total += share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("residency sums to %v", total)
	}
	f, m := s.Switches()
	if f < 0 || m < 0 {
		t.Fatal("negative switches")
	}
}

func TestAnnotationsListing(t *testing.T) {
	s, err := Open(demoPage, PerfPolicy())
	if err != nil {
		t.Fatal(err)
	}
	anns := s.Annotations()
	if len(anns) != 3 {
		t.Fatalf("annotations = %v", anns)
	}
	joined := strings.Join(anns, "\n")
	for _, want := range []string{"onload-qos", "onclick-qos", "ontouchstart-qos"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %s", want, joined)
		}
	}
}

func TestAutoAnnotate(t *testing.T) {
	plain := `<html><body><div id="b">x</div>
		<script>
			document.getElementById("b").addEventListener("click", function(e) {
				e.target.textContent = "hi";
			});
		</script></body></html>`
	annotated, report, err := AutoAnnotate(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(annotated, ":QoS") {
		t.Fatal("no rules injected")
	}
	if len(report.Findings) < 2 { // load + click
		t.Fatalf("findings = %d", len(report.Findings))
	}
	// The annotated page must open and resolve annotations.
	s, err := Open(annotated, GreenWebPolicy(Usable))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Annotations()) < 2 {
		t.Fatalf("annotated page resolves %d annotations", len(s.Annotations()))
	}
}

func TestAnalyze(t *testing.T) {
	report, err := Analyze(demoPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) < 3 {
		t.Fatalf("findings = %+v", report.Findings)
	}
}

func TestCheckAnnotations(t *testing.T) {
	good, errs := CheckAnnotations(`
		div#a:QoS { onclick-qos: single, short; }
		div#b:QoS { ontouchmove-qos: continuous, 20, 100; }
	`)
	if len(errs) != 0 || len(good) != 2 {
		t.Fatalf("good = %v, errs = %v", good, errs)
	}
	_, errs = CheckAnnotations(`div#a:QoS { onclick-qos: sometimes; }`)
	if len(errs) == 0 {
		t.Fatal("bad value not reported")
	}
	_, errs = CheckAnnotations(`div#a { onclick-qos: single, short; }`)
	if len(errs) == 0 {
		t.Fatal("missing :QoS not reported")
	}
}

func TestZeroPolicyRejected(t *testing.T) {
	if _, err := Open(demoPage, Policy{}); err == nil {
		t.Fatal("zero policy accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"GreenWeb-I":  GreenWebPolicy(Imperceptible),
		"GreenWeb-U":  GreenWebPolicy(Usable),
		"Perf":        PerfPolicy(),
		"Interactive": InteractivePolicy(),
		"Ondemand":    OndemandPolicy(),
		"Powersave":   PowersavePolicy(),
		"EBS":         EBSPolicy(),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}
