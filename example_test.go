package greenweb_test

import (
	"fmt"
	"sort"

	greenweb "github.com/wattwiseweb/greenweb"
)

// ExampleOpen runs an annotated page under the GreenWeb runtime and reads
// back the resolved annotations.
func ExampleOpen() {
	page := `<html><head><style>
		body:QoS   { onload-qos: single, long; }
		div#go:QoS { onclick-qos: single, short; }
	</style></head>
	<body><div id="go">run</div>
	<script>
		document.getElementById("go").addEventListener("click", function(e) {
			e.target.textContent = "done";
		});
	</script></body></html>`

	s, err := greenweb.Open(page, greenweb.GreenWebPolicy(greenweb.Usable))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	anns := s.Annotations()
	sort.Strings(anns)
	for _, a := range anns {
		fmt.Println(a)
	}
	s.Tap("go")
	s.Settle()
	fmt.Println("violations:", s.Violation(greenweb.Usable))
	// Output:
	// html>body { onload-qos: single (TI=1s, TU=10s) }
	// html>body>div#go { onclick-qos: single (TI=100ms, TU=300ms) }
	// violations: 0
}

// ExampleCheckAnnotations lints hand-written GreenWeb rules.
func ExampleCheckAnnotations() {
	good, errs := greenweb.CheckAnnotations(`
		div#a:QoS { onclick-qos: single, short; }
		div#b:QoS { ontouchmove-qos: continuous, 20, 100; }
		div#c:QoS { onload-qos: never; }
	`)
	for _, g := range good {
		fmt.Println("ok:", g)
	}
	fmt.Println("problems:", len(errs))
	// Output:
	// ok: div#a:QoS { onclick-qos: single (TI=100ms, TU=300ms) }
	// ok: div#b:QoS { ontouchmove-qos: continuous (TI=20ms, TU=100ms) }
	// problems: 1
}

// ExampleAutoAnnotate classifies an unannotated application's events.
func ExampleAutoAnnotate() {
	page := `<html><body><div id="b">x</div>
	<script>
		document.getElementById("b").addEventListener("click", function(e) {
			var n = 0;
			function step() {
				n++;
				document.getElementById("b").style.width = n + "px";
				if (n < 5) { requestAnimationFrame(step); }
			}
			requestAnimationFrame(step);
		});
	</script></body></html>`

	_, report, err := greenweb.AutoAnnotate(page)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, f := range report.Findings {
		fmt.Printf("%s on%s: %s\n", f.Selector, f.Event, f.Annotation.Type)
	}
	// Output:
	// body onload: single
	// div#b onclick: continuous
}
