// Command greennode is a remote shard worker: it listens for greensrv
// connections speaking the length-prefixed frame protocol and executes
// shipped jobs on a local fleet pool — the full retry/quarantine ladder runs
// here, so a remote job's terminal result is indistinguishable from a local
// one. Several greensrv sessions may share one greennode; each connection is
// handshaken and multiplexed independently.
//
// Usage:
//
//	greennode [-addr :9090] [-workers N] [-name NAME] [-job-timeout 2m]
//	          [-max-attempts N] [-retry-base 50ms] [-retry-max 2s]
//	          [-retry-seed S] [-http ADDR] [-log-level LEVEL]
//	          [-no-obs] [-no-vm]
//
// With -http ADDR the worker serves its own health surface:
//
//	GET /metrics  Prometheus text exposition (pool + transport counters,
//	              span-drop totals)
//	GET /healthz  liveness — 200 while the process accepts connections
//	GET /readyz   readiness — 200 once the frame listener is bound
//
// Tracing: when a connecting greensrv negotiates tracing (and this process
// has obs enabled), executed jobs record spans that ship back piggybacked on
// result frames. -no-obs opts the worker out — the handshake then omits
// trace support and the server degrades gracefully.
//
// On SIGINT/SIGTERM the worker stops accepting, closes its connections
// (cancelling their in-flight jobs; the server re-homes them), and exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/slog"
	"github.com/wattwiseweb/greenweb/internal/shard"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	workers := flag.Int("workers", 0, "execution slots (0 = GOMAXPROCS)")
	name := flag.String("name", "", "name advertised in the handshake (default listen address)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt execution cap (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per failing job before quarantine (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	httpAddr := flag.String("http", "", "health/metrics listen address (empty = no health surface)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	noObs := flag.Bool("no-obs", false, "disable decision recording and tracing (outputs must be byte-identical either way)")
	noVM := flag.Bool("no-vm", false, "run scripts on the tree-walking interpreter instead of the bytecode VM (outputs must be byte-identical either way)")
	flag.Parse()

	log := slog.New("greennode")
	lvl, err := slog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greennode:", err)
		os.Exit(1)
	}
	slog.SetLevel(lvl)

	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "greennode: -workers must be >= 0 (0 = GOMAXPROCS)")
		os.Exit(1)
	}
	if *maxAttempts < 1 {
		fmt.Fprintln(os.Stderr, "greennode: -max-attempts must be >= 1")
		os.Exit(1)
	}
	if *noObs {
		obs.SetEnabled(false)
	}
	if *noVM {
		js.SetVM(false)
	}

	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	w := shard.NewWorker(shard.WorkerOptions{
		Name: *name,
		Pool: fleet.Options{
			Workers: n, JobTimeout: *jobTimeout, MaxAttempts: *maxAttempts,
			RetryBaseDelay: *retryBase, RetryMaxDelay: *retryMax, RetrySeed: *retrySeed,
		},
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	log.Info("listening", "addr", l.Addr(), "workers", w.Workers(),
		"pid", os.Getpid(), "obs", obs.Enabled())

	// The health surface is a separate listener so scraping and probing
	// never compete with the frame protocol, and a worker behind a private
	// job port can still expose health on a public one.
	var ready atomic.Bool
	ready.Store(true)
	var healthSrv *http.Server
	if *httpAddr != "" {
		reg := obs.NewRegistry()
		w.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.WriteAll(rw, reg, obs.Default())
		})
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
			rw.WriteHeader(http.StatusOK)
			fmt.Fprintln(rw, "ok")
		})
		mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
			if !ready.Load() {
				rw.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(rw, "draining")
				return
			}
			rw.WriteHeader(http.StatusOK)
			fmt.Fprintln(rw, "ready")
		})
		healthSrv = &http.Server{
			Addr: *httpAddr, Handler: mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Error("health listen failed", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		go healthSrv.Serve(hl)
		log.Info("health surface up", "addr", hl.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(l) }()

	select {
	case <-sigc:
		log.Info("signal received, shutting down")
		ready.Store(false)
		w.Close()
		if healthSrv != nil {
			healthSrv.Close()
		}
	case err := <-errc:
		if err != nil {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}
}
