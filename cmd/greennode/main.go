// Command greennode is a remote shard worker: it listens for greensrv
// connections speaking the length-prefixed frame protocol and executes
// shipped jobs on a local fleet pool — the full retry/quarantine ladder runs
// here, so a remote job's terminal result is indistinguishable from a local
// one. Several greensrv sessions may share one greennode; each connection is
// handshaken and multiplexed independently.
//
// Usage:
//
//	greennode [-addr :9090] [-workers N] [-name NAME] [-job-timeout 2m]
//	          [-max-attempts N] [-retry-base 50ms] [-retry-max 2s]
//	          [-retry-seed S] [-no-obs] [-no-vm]
//
// On SIGINT/SIGTERM the worker stops accepting, closes its connections
// (cancelling their in-flight jobs; the server re-homes them), and exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/shard"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	workers := flag.Int("workers", 0, "execution slots (0 = GOMAXPROCS)")
	name := flag.String("name", "", "name advertised in the handshake (default listen address)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt execution cap (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per failing job before quarantine (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	noObs := flag.Bool("no-obs", false, "disable decision recording (outputs must be byte-identical either way)")
	noVM := flag.Bool("no-vm", false, "run scripts on the tree-walking interpreter instead of the bytecode VM (outputs must be byte-identical either way)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "greennode: -workers must be >= 0 (0 = GOMAXPROCS)")
		os.Exit(1)
	}
	if *maxAttempts < 1 {
		fmt.Fprintln(os.Stderr, "greennode: -max-attempts must be >= 1")
		os.Exit(1)
	}
	if *noObs {
		obs.SetEnabled(false)
	}
	if *noVM {
		js.SetVM(false)
	}

	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	w := shard.NewWorker(shard.WorkerOptions{
		Name: *name,
		Pool: fleet.Options{
			Workers: n, JobTimeout: *jobTimeout, MaxAttempts: *maxAttempts,
			RetryBaseDelay: *retryBase, RetryMaxDelay: *retryMax, RetrySeed: *retrySeed,
		},
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greennode:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "greennode: listening on %s with %d workers\n",
		l.Addr(), w.Workers())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(l) }()

	select {
	case <-sigc:
		fmt.Fprintln(os.Stderr, "greennode: signal received, shutting down")
		w.Close()
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "greennode:", err)
			os.Exit(1)
		}
	}
}
