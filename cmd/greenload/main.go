// Command greenload replays high-volume sweep submissions against a live
// greensrv and reports the client-side latency distribution: submission
// RTT and end-to-end sweep completion, p50/p99/p999 from obs histograms,
// plus throughput in sweeps/sec and jobs/sec.
//
// Usage:
//
//	greenload [-addr http://127.0.0.1:8080] [-sweeps N] [-concurrency C]
//	          [-apps csv] [-kinds csv] [-phase micro|full] [-repeats N]
//	          [-faults JSON] [-client-id ID] [-poll 25ms] [-timeout 2m]
//	          [-max-retries 50] [-wait-persisted] [-trace-sample N]
//	          [-json FILE]
//
// greenload is an honest client: a 429/503 rejection is parsed for its
// retry_after_ms (falling back to the Retry-After header) and the
// submission retried after that backoff, up to -max-retries times.
// -wait-persisted additionally waits for each sweep's status to report
// persisted=true — the handshake the CI distributed-smoke job uses before
// SIGKILLing the server.
//
// -trace-sample N fetches the fleet trace (GET .../trace?fleet=1) for the
// first N completed sweeps and splits the end-to-end latency into phases —
// queue-wait (admission to first execution) and execute (job wall time on
// its worker) — reported as their own quantile ladders next to submit RTT,
// plus the sweeps' cumulative span_drops so a truncated trace is visible in
// the report. Requires the server to run with tracing enabled.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wattwiseweb/greenweb/internal/obs"
)

// loadBounds suits client-observed latencies: 100 µs submission RTTs up to
// minute-long sweep completions.
var loadBounds = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
}

// rejection mirrors the server's 429/503 body.
type rejection struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
	QueueDepth   int64  `json:"queue_depth"`
}

// sweepAck mirrors the 202 body.
type sweepAck struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
}

// sweepStatus is the slice of GET /v1/sweeps/{id} greenload reads.
type sweepStatus struct {
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
	Finished  bool `json:"finished"`
	Persisted bool `json:"persisted"`
}

// report is the machine-readable summary (-json).
type report struct {
	Sweeps        int       `json:"sweeps"`
	Jobs          int64     `json:"jobs"`
	FailedJobs    int64     `json:"failed_jobs"`
	FailedSweeps  int64     `json:"failed_sweeps"`
	Rejections    int64     `json:"rejections"` // 429/503 answers absorbed by backoff
	WallS         float64   `json:"wall_s"`
	SweepsPerSec  float64   `json:"sweeps_per_sec"`
	JobsPerSec    float64   `json:"jobs_per_sec"`
	SubmitMS      quantiles `json:"submit_ms"`
	EndToEndMS    quantiles `json:"e2e_ms"`
	SweepIDs      []string  `json:"sweep_ids"`
	WaitPersisted bool      `json:"wait_persisted,omitempty"`

	// Per-phase breakdown from sampled fleet traces (-trace-sample N).
	TraceSampled int        `json:"trace_sampled,omitempty"`
	SpanDrops    int64      `json:"span_drops"`
	QueueMS      *quantiles `json:"queue_ms,omitempty"`
	ExecuteMS    *quantiles `json:"execute_ms,omitempty"`
}

// quantiles are histogram-interpolated estimates in milliseconds; -1 means
// the quantile landed in the overflow bucket (beyond the bound ladder).
type quantiles struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

func quantilesOf(s obs.HistogramSnapshot) quantiles {
	ms := func(q float64) float64 {
		v := s.Quantile(q)
		if v < 0 {
			return -1
		}
		return v * 1000
	}
	return quantiles{P50: ms(0.5), P99: ms(0.99), P999: ms(0.999)}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "greensrv base URL")
	sweeps := flag.Int("sweeps", 100, "sweep submissions to replay")
	concurrency := flag.Int("concurrency", 8, "concurrent client connections")
	apps := flag.String("apps", "Todo", "comma-separated app names (empty = server default grid)")
	kinds := flag.String("kinds", "Perf,GreenWeb-U", "comma-separated governor kinds (empty = server default)")
	phase := flag.String("phase", "micro", "trace phase: micro or full")
	repeats := flag.Int("repeats", 0, "per-job repeats (0 = phase default)")
	faults := flag.String("faults", "", `fault-injection spec merged into each sweep request, e.g. '{"seed":3,"dvfs":{"deny_prob":0.2}}'`)
	clientID := flag.String("client-id", "", "X-Client-ID header (admission token-bucket key)")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-sweep completion deadline")
	maxRetries := flag.Int("max-retries", 50, "submission retries on 429/503 before giving up")
	waitPersisted := flag.Bool("wait-persisted", false, "wait for persisted=true in each sweep's status")
	traceSample := flag.Int("trace-sample", 0, "fetch fleet traces for this many completed sweeps and report per-phase latency")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file")
	flag.Parse()

	body, err := json.Marshal(sweepRequest(*apps, *kinds, *phase, *repeats, *faults))
	if err != nil {
		fatal(err)
	}

	var (
		submitHist = obs.NewHistogram(loadBounds)
		e2eHist    = obs.NewHistogram(loadBounds)
		jobs       atomic.Int64
		failedJobs atomic.Int64
		failedSw   atomic.Int64
		rejections atomic.Int64
		mu         sync.Mutex
		ids        []string
	)
	client := &http.Client{Timeout: *timeout}

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				id, n, ok := submit(client, *addr, *clientID, body, *maxRetries, submitHist, &rejections)
				if !ok {
					failedSw.Add(1)
					continue
				}
				jobs.Add(int64(n))
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				st, ok := await(client, *addr, id, *poll, *timeout, *waitPersisted)
				if !ok {
					failedSw.Add(1)
					continue
				}
				failedJobs.Add(int64(st.Failed))
				// End-to-end: first POST (including any rejection backoff)
				// to finished — what a submitting client actually waits.
				e2eHist.Observe(time.Since(t0).Seconds())
			}
		}()
	}
	for i := 0; i < *sweeps; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	rep := report{
		Sweeps:        *sweeps,
		Jobs:          jobs.Load(),
		FailedJobs:    failedJobs.Load(),
		FailedSweeps:  failedSw.Load(),
		Rejections:    rejections.Load(),
		WallS:         wall.Seconds(),
		SweepsPerSec:  float64(*sweeps-int(failedSw.Load())) / wall.Seconds(),
		JobsPerSec:    float64(jobs.Load()) / wall.Seconds(),
		SubmitMS:      quantilesOf(submitHist.Snapshot()),
		EndToEndMS:    quantilesOf(e2eHist.Snapshot()),
		SweepIDs:      ids,
		WaitPersisted: *waitPersisted,
	}
	if *traceSample > 0 {
		sampleTraces(client, *addr, ids, *traceSample, &rep)
	}
	printReport(rep)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if failedSw.Load() > 0 {
		os.Exit(1)
	}
}

func sweepRequest(apps, kinds, phase string, repeats int, faults string) map[string]any {
	req := map[string]any{"phase": phase}
	if apps != "" {
		req["apps"] = strings.Split(apps, ",")
	}
	if kinds != "" {
		req["kinds"] = strings.Split(kinds, ",")
	}
	if repeats > 0 {
		req["repeats"] = repeats
	}
	if faults != "" {
		// Passed through raw so greenload needs no knowledge of the fault
		// schema; the server validates it (a bad spec fails every submission
		// with a 400, loudly).
		var spec json.RawMessage
		if err := json.Unmarshal([]byte(faults), &spec); err != nil {
			fatal(fmt.Errorf("-faults is not valid JSON: %w", err))
		}
		req["faults"] = spec
	}
	return req
}

// submit POSTs one sweep, honoring rejection backoff.
func submit(client *http.Client, addr, clientID string, body []byte, maxRetries int,
	hist *obs.Histogram, rejections *atomic.Int64) (string, int, bool) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, addr+"/v1/sweeps", bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if clientID != "" {
			req.Header.Set("X-Client-ID", clientID)
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenload: submit:", err)
			return "", 0, false
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			hist.Observe(time.Since(t0).Seconds())
			var ack sweepAck
			err := json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if err != nil || ack.ID == "" {
				fmt.Fprintln(os.Stderr, "greenload: bad 202 body:", err)
				return "", 0, false
			}
			return ack.ID, ack.Jobs, true
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejections.Add(1)
			backoff := rejectionBackoff(resp)
			resp.Body.Close()
			if attempt >= maxRetries {
				fmt.Fprintf(os.Stderr, "greenload: gave up after %d rejections\n", attempt+1)
				return "", 0, false
			}
			time.Sleep(backoff)
		default:
			slurp, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "greenload: submit = %d: %s\n", resp.StatusCode, slurp)
			return "", 0, false
		}
	}
}

// rejectionBackoff extracts the advised wait from a 429/503: the JSON
// body's retry_after_ms, else the Retry-After header, else 100ms.
func rejectionBackoff(resp *http.Response) time.Duration {
	var rej rejection
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&rej); err == nil && rej.RetryAfterMS > 0 {
		return time.Duration(rej.RetryAfterMS) * time.Millisecond
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 100 * time.Millisecond
}

// await polls a sweep's status until it is finished (and, when asked,
// persisted) or the deadline passes.
func await(client *http.Client, addr, id string, poll, timeout time.Duration, persisted bool) (sweepStatus, bool) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/v1/sweeps/" + id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenload: status:", err)
			return sweepStatus{}, false
		}
		var st sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenload: status body:", err)
			return sweepStatus{}, false
		}
		if st.Finished && (!persisted || st.Persisted) {
			return st, true
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "greenload: sweep %s missed the %v deadline\n", id, timeout)
			return sweepStatus{}, false
		}
		time.Sleep(poll)
	}
}

// fleetTrace is the slice of the Chrome trace_event artifact greenload
// reads: complete-event names/durations plus the drop counter.
type fleetTrace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Dur  int64  `json:"dur"`
	} `json:"traceEvents"`
	OtherData struct {
		SpanDrops int64 `json:"span_drops"`
	} `json:"otherData"`
}

// sampleTraces fetches up to n completed sweeps' fleet traces and folds
// their queue-wait and execute span durations into per-phase histograms.
// A 404 (tracing off server-side, or the trace evicted) skips that sweep
// with a warning rather than failing the run — the load numbers stand on
// their own.
func sampleTraces(client *http.Client, addr string, ids []string, n int, rep *report) {
	queueHist := obs.NewHistogram(loadBounds)
	execHist := obs.NewHistogram(loadBounds)
	sampled := 0
	for _, id := range ids {
		if sampled >= n {
			break
		}
		resp, err := client.Get(addr + "/v1/sweeps/" + id + "/trace?fleet=1")
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenload: trace:", err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "greenload: trace %s = %d (tracing off?)\n", id, resp.StatusCode)
			continue
		}
		var tf fleetTrace
		err = json.NewDecoder(resp.Body).Decode(&tf)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenload: trace body:", err)
			continue
		}
		for _, ev := range tf.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			switch ev.Name {
			case "queue-wait":
				queueHist.Observe(float64(ev.Dur) / 1e6)
			case "execute":
				execHist.Observe(float64(ev.Dur) / 1e6)
			}
		}
		rep.SpanDrops += tf.OtherData.SpanDrops
		sampled++
	}
	rep.TraceSampled = sampled
	if sampled > 0 {
		q := quantilesOf(queueHist.Snapshot())
		e := quantilesOf(execHist.Snapshot())
		rep.QueueMS, rep.ExecuteMS = &q, &e
	}
}

func printReport(rep report) {
	fmt.Printf("greenload: %d sweeps (%d jobs) in %.2fs — %.1f sweeps/s, %.1f jobs/s\n",
		rep.Sweeps, rep.Jobs, rep.WallS, rep.SweepsPerSec, rep.JobsPerSec)
	fmt.Printf("  rejections absorbed: %d   failed sweeps: %d   failed jobs: %d\n",
		rep.Rejections, rep.FailedSweeps, rep.FailedJobs)
	fmt.Printf("  submit  p50 %s  p99 %s  p999 %s\n",
		fmtMS(rep.SubmitMS.P50), fmtMS(rep.SubmitMS.P99), fmtMS(rep.SubmitMS.P999))
	fmt.Printf("  e2e     p50 %s  p99 %s  p999 %s\n",
		fmtMS(rep.EndToEndMS.P50), fmtMS(rep.EndToEndMS.P99), fmtMS(rep.EndToEndMS.P999))
	if rep.TraceSampled > 0 {
		fmt.Printf("  phase breakdown from %d traced sweep(s), %d span(s) dropped:\n",
			rep.TraceSampled, rep.SpanDrops)
		fmt.Printf("  queue   p50 %s  p99 %s  p999 %s\n",
			fmtMS(rep.QueueMS.P50), fmtMS(rep.QueueMS.P99), fmtMS(rep.QueueMS.P999))
		fmt.Printf("  execute p50 %s  p99 %s  p999 %s\n",
			fmtMS(rep.ExecuteMS.P50), fmtMS(rep.ExecuteMS.P99), fmtMS(rep.ExecuteMS.P999))
	}
}

func fmtMS(v float64) string {
	if v < 0 {
		return ">60000ms"
	}
	return fmt.Sprintf("%.2fms", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "greenload:", err)
	os.Exit(1)
}
