// Command greensrv serves the experiment fleet over HTTP: clients enqueue
// app × governor sweeps as jobs, poll their status, and stream results as
// NDJSON while workers — one isolated simulated device each — chew through
// the queue in parallel. With -nodes N the workers are spread across N
// shard nodes pulling from a partitioned work-stealing queue; with -store
// DIR every finished sweep is made durable in a write-ahead log and
// survives restarts (GET /v1/sweeps/{id} replays from disk).
//
// Usage:
//
//	greensrv [-addr :8080] [-nodes N] [-workers N] [-queue DEPTH] [-job-timeout 2m]
//	         [-max-attempts N] [-retry-base 50ms] [-retry-max 2s] [-retry-seed S]
//	         [-remote-nodes host:port,host:port,...]
//	         [-store DIR] [-store-compact BYTES]
//	         [-admit-queue N] [-admit-rate R] [-admit-burst B]
//	         [-read-header-timeout 10s] [-log-level LEVEL]
//	         [-no-obs] [-no-trace] [-no-vm] [-drain-timeout 30s] [-obs-dump FILE]
//
// With -remote-nodes the execution substrate is a cluster of greennode
// worker processes reached over TCP instead of in-process pools: jobs ship
// as length-prefixed JSON frames, heartbeats watch each link, and a node
// that dies mid-sweep is evicted with its jobs re-homed onto the survivors
// — sweep bytes are identical either way.
//
// API:
//
//	POST /v1/sweeps              {"apps":[...],"kinds":[...],"phase":"full"}
//	                             (503/429 + JSON {code, retry_after_ms,
//	                             queue_depth} while draining or shedding)
//	GET  /v1/sweeps/{id}         status snapshot (live or store-replayed)
//	GET  /v1/sweeps/{id}/results NDJSON rows in submission order
//	GET  /v1/sweeps/{id}/events  NDJSON per-frame decision log
//	GET  /v1/sweeps/{id}/trace   Chrome trace-event JSON (per-frame/per-event
//	                             energy spans with nested decision spans);
//	                             ?fleet=1 → the fleet-level distributed trace
//	                             (admission, queue, steal, re-home, dispatch,
//	                             and per-node execute spans, clock-aligned)
//	GET  /v1/nodes               execution node federation: liveness,
//	                             heartbeat RTT, queue depth, span drops
//	GET  /healthz                liveness (503 while draining)
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/pprof/           runtime profiles
//
// On SIGINT/SIGTERM the server drains: new submissions answer 503, in-flight
// sweeps get -drain-timeout to finish (then are cancelled), the final metrics
// snapshot is flushed to -obs-dump (or stderr), and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/obs"
	"github.com/wattwiseweb/greenweb/internal/obs/slog"
	"github.com/wattwiseweb/greenweb/internal/shard"
	"github.com/wattwiseweb/greenweb/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodes := flag.Int("nodes", 1, "shard node count (1 = single worker pool, no shard layer)")
	workers := flag.Int("workers", 0, "worker count per node (0 = GOMAXPROCS, split across nodes when -nodes > 1)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4×workers)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt execution cap (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per failing job before quarantine (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	remoteNodes := flag.String("remote-nodes", "", "comma-separated greennode addresses; jobs run on these remote workers instead of in-process pools")
	storeDir := flag.String("store", "", "durable sweep store directory (empty = in-memory only)")
	storeCompact := flag.Int64("store-compact", 64<<20, "auto-compact the WAL past this many bytes (0 = manual)")
	admitQueue := flag.Int("admit-queue", 0, "reject new sweeps (429) while this many jobs are queued (0 = off)")
	admitRate := flag.Float64("admit-rate", 0, "per-client sweep submissions per second (0 = off)")
	admitBurst := flag.Int("admit-burst", 10, "per-client token-bucket burst")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "cap on reading a request's headers (slowloris guard)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	noObs := flag.Bool("no-obs", false, "disable decision recording and tracing (outputs must be byte-identical either way)")
	noTrace := flag.Bool("no-trace", false, "disable fleet-level distributed tracing only (sweep bytes are identical either way)")
	noVM := flag.Bool("no-vm", false, "run scripts on the tree-walking interpreter instead of the bytecode VM (outputs must be byte-identical either way)")
	stageWorkers := flag.Int("stage-workers", 0, "default render-pipeline stage threads per engine (0 or 1 = serial; sweeps may override per job)")
	noParallelRender := flag.Bool("no-parallel-render", false, "force serial frame production by default (outputs must be byte-identical to the default serial pipeline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight sweeps on SIGINT/SIGTERM before cancellation")
	obsDump := flag.String("obs-dump", "", "file for the final metrics snapshot on shutdown (default stderr)")
	flag.Parse()

	// Catch configuration mistakes at startup with a one-line error instead
	// of surfacing them later as confusing runtime behavior. Zero stays legal
	// where it is a documented default (-workers, -queue, -admit-queue,
	// -admit-rate mean "auto"/"off" at 0).
	fail := func(msg string) {
		fmt.Fprintln(os.Stderr, "greensrv:", msg)
		os.Exit(1)
	}
	log := slog.New("greensrv")
	lvl, lvlErr := slog.ParseLevel(*logLevel)
	if lvlErr != nil {
		fail(lvlErr.Error())
	}
	slog.SetLevel(lvl)
	switch {
	case *nodes < 1:
		fail("-nodes must be >= 1")
	case *workers < 0:
		fail("-workers must be >= 0 (0 = GOMAXPROCS)")
	case *queue < 0:
		fail("-queue must be >= 0 (0 = 4×workers)")
	case *maxAttempts < 1:
		fail("-max-attempts must be >= 1")
	case *admitQueue < 0:
		fail("-admit-queue must be >= 0 (0 = off)")
	case *admitRate < 0:
		fail("-admit-rate must be >= 0 (0 = off)")
	case *admitBurst < 1:
		fail("-admit-burst must be >= 1")
	case *remoteNodes != "" && *nodes > 1:
		fail("-remote-nodes and -nodes > 1 are mutually exclusive (the remote list fixes the node count)")
	case !harness.ValidStageWorkers(*stageWorkers):
		fail(fmt.Sprintf("-stage-workers must be in [0, %d]", browser.MaxStageWorkers))
	case *noParallelRender && *stageWorkers > 1:
		fail("-no-parallel-render conflicts with -stage-workers > 1")
	}

	// The sweep context is deliberately NOT the signal context: a signal
	// must stop intake and start the drain, not kill every running sweep on
	// the spot. Cancellation of stragglers happens inside Drain, after the
	// grace period.
	baseCtx := context.Background()
	if *noObs {
		obs.SetEnabled(false)
		baseCtx = obs.ContextWithObs(baseCtx, false)
	}
	if *noVM {
		js.SetVM(false)
	}
	if *noParallelRender {
		browser.SetDefaultStageWorkers(1)
	} else {
		browser.SetDefaultStageWorkers(*stageWorkers)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nodeOpts := fleet.Options{
		JobTimeout: *jobTimeout, MaxAttempts: *maxAttempts,
		RetryBaseDelay: *retryBase, RetryMaxDelay: *retryMax, RetrySeed: *retrySeed,
	}
	var runner fleet.Runner
	if *remoteNodes != "" {
		addrs := strings.Split(*remoteNodes, ",")
		ns := make([]shard.Node, 0, len(addrs))
		for i, a := range addrs {
			a = strings.TrimSpace(a)
			if a == "" {
				fail("-remote-nodes: empty address in list")
			}
			n, err := shard.NewRemoteNode(i, shard.RemoteOptions{Addr: a, Seed: *retrySeed})
			if err != nil {
				fail(err.Error())
			}
			ns = append(ns, n)
		}
		runner = shard.NewWithNodes(ns, *queue)
	} else if *nodes > 1 {
		per := *workers
		if per <= 0 {
			if per = runtime.GOMAXPROCS(0) / *nodes; per < 1 {
				per = 1
			}
		}
		runner = shard.New(shard.Options{
			Nodes: *nodes, WorkersPerNode: per,
			QueueDepth: *queue, Node: nodeOpts,
		})
	} else {
		nodeOpts.Workers, nodeOpts.QueueDepth = *workers, *queue
		runner = fleet.New(nodeOpts)
	}
	manager := fleet.NewManager(baseCtx, runner)
	if *noTrace {
		manager.SetTracing(false)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Error("store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		st.SetCompactThreshold(*storeCompact)
		manager.SetStore(st)
		log.Info("store recovered", "dir", *storeDir, "sweeps", len(st.IDs()),
			"torn_records", st.Torn(), "dropped_sweeps", st.Dropped())
	}

	api := fleet.NewServer(manager)
	if *admitQueue > 0 || *admitRate > 0 {
		api.ConfigureAdmission(fleet.AdmissionOptions{
			MaxQueueDepth: *admitQueue, RatePerSec: *admitRate, Burst: *admitBurst,
		})
	}
	// ReadHeaderTimeout bounds header parsing so an idle half-open client
	// (slowloris) cannot pin a connection; no ReadTimeout because sweep
	// submissions are small and results stream for as long as they stream.
	srv := &http.Server{
		Addr: *addr, Handler: api,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	nodeCount := *nodes
	if c, ok := runner.(*shard.Cluster); ok {
		nodeCount = c.Nodes()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("listening", "addr", *addr, "workers", runner.Workers(),
		"nodes", nodeCount, "pid", os.Getpid(),
		"tracing", manager.TracingEnabled())

	select {
	case <-sigCtx.Done():
		log.Info("signal received, draining", "timeout", *drainTimeout)
		api.StartDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := manager.Drain(drainCtx); err != nil {
			log.Warn("drain expired, in-flight sweeps cancelled", "err", err)
		}
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Warn("shutdown", "err", err)
		}
		runner.Close()
		if st != nil {
			if err := st.Close(); err != nil {
				log.Warn("store close", "err", err)
			}
		}
		flushMetrics(api, *obsDump)
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// flushMetrics writes the final metrics snapshot (Prometheus text) so a
// drained server leaves its counters on record even when nothing scraped it.
func flushMetrics(api *fleet.Server, path string) {
	out := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greensrv: obs-dump:", err)
		} else {
			defer f.Close()
			out = f
		}
	}
	if out == os.Stderr {
		fmt.Fprintln(out, "greensrv: final metrics snapshot:")
	}
	if err := obs.WriteAll(out, api.Registry(), obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "greensrv: obs-dump:", err)
	}
}
