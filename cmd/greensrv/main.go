// Command greensrv serves the experiment fleet over HTTP: clients enqueue
// app × governor sweeps as jobs, poll their status, and stream results as
// NDJSON while workers — one isolated simulated device each — chew through
// the queue in parallel.
//
// Usage:
//
//	greensrv [-addr :8080] [-workers N] [-queue DEPTH] [-job-timeout 2m]
//	         [-max-attempts N] [-retry-base 50ms] [-retry-max 2s] [-retry-seed S]
//	         [-no-obs] [-drain-timeout 30s] [-obs-dump FILE]
//
// API:
//
//	POST /v1/sweeps              {"apps":[...],"kinds":[...],"phase":"full"}
//	GET  /v1/sweeps/{id}         status snapshot
//	GET  /v1/sweeps/{id}/results NDJSON rows in submission order
//	GET  /v1/sweeps/{id}/events  NDJSON per-frame decision log
//	GET  /v1/sweeps/{id}/trace   Chrome trace-event JSON (per-frame/per-event
//	                             energy spans with nested decision spans)
//	GET  /healthz                liveness (503 while draining)
//	GET  /metrics                Prometheus text exposition
//	GET  /debug/pprof/           runtime profiles
//
// On SIGINT/SIGTERM the server drains: new submissions answer 503, in-flight
// sweeps get -drain-timeout to finish (then are cancelled), the final metrics
// snapshot is flushed to -obs-dump (or stderr), and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4×workers)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt execution cap (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per failing job before quarantine (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	noObs := flag.Bool("no-obs", false, "disable decision recording (outputs must be byte-identical either way)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight sweeps on SIGINT/SIGTERM before cancellation")
	obsDump := flag.String("obs-dump", "", "file for the final metrics snapshot on shutdown (default stderr)")
	flag.Parse()

	// The sweep context is deliberately NOT the signal context: a signal
	// must stop intake and start the drain, not kill every running sweep on
	// the spot. Cancellation of stragglers happens inside Drain, after the
	// grace period.
	baseCtx := context.Background()
	if *noObs {
		obs.SetEnabled(false)
		baseCtx = obs.ContextWithObs(baseCtx, false)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := fleet.New(fleet.Options{
		Workers: *workers, QueueDepth: *queue, JobTimeout: *jobTimeout,
		MaxAttempts: *maxAttempts, RetryBaseDelay: *retryBase,
		RetryMaxDelay: *retryMax, RetrySeed: *retrySeed,
	})
	manager := fleet.NewManager(baseCtx, pool)
	api := fleet.NewServer(manager)
	srv := &http.Server{Addr: *addr, Handler: api}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "greensrv: listening on %s with %d workers\n", *addr, pool.Workers())

	select {
	case <-sigCtx.Done():
		fmt.Fprintf(os.Stderr, "greensrv: signal received, draining (timeout %v)\n", *drainTimeout)
		api.StartDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := manager.Drain(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "greensrv: drain expired, in-flight sweeps cancelled:", err)
		}
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "greensrv: shutdown:", err)
		}
		pool.Close()
		flushMetrics(api, *obsDump)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "greensrv:", err)
		os.Exit(1)
	}
}

// flushMetrics writes the final metrics snapshot (Prometheus text) so a
// drained server leaves its counters on record even when nothing scraped it.
func flushMetrics(api *fleet.Server, path string) {
	out := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greensrv: obs-dump:", err)
		} else {
			defer f.Close()
			out = f
		}
	}
	if out == os.Stderr {
		fmt.Fprintln(out, "greensrv: final metrics snapshot:")
	}
	if err := obs.WriteAll(out, api.Registry(), obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "greensrv: obs-dump:", err)
	}
}
