// Command greensrv serves the experiment fleet over HTTP: clients enqueue
// app × governor sweeps as jobs, poll their status, and stream results as
// NDJSON while workers — one isolated simulated device each — chew through
// the queue in parallel.
//
// Usage:
//
//	greensrv [-addr :8080] [-workers N] [-queue DEPTH] [-job-timeout 2m]
//	         [-max-attempts N] [-retry-base 50ms] [-retry-max 2s] [-retry-seed S]
//
// API:
//
//	POST /v1/sweeps              {"apps":[...],"kinds":[...],"phase":"full"}
//	GET  /v1/sweeps/{id}         status snapshot
//	GET  /v1/sweeps/{id}/results NDJSON rows in submission order
//	GET  /v1/sweeps/{id}/trace   Chrome trace-event JSON (per-frame/per-event
//	                             energy spans, one trace process per job)
//	GET  /healthz                liveness
//	GET  /metrics                fleet counters
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/wattwiseweb/greenweb/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4×workers)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt execution cap (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per failing job before quarantine (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	retrySeed := flag.Int64("retry-seed", 0, "seed for deterministic backoff jitter")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := fleet.New(fleet.Options{
		Workers: *workers, QueueDepth: *queue, JobTimeout: *jobTimeout,
		MaxAttempts: *maxAttempts, RetryBaseDelay: *retryBase,
		RetryMaxDelay: *retryMax, RetrySeed: *retrySeed,
	})
	manager := fleet.NewManager(ctx, pool)
	srv := &http.Server{Addr: *addr, Handler: fleet.NewServer(manager)}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "greensrv: listening on %s with %d workers\n", *addr, pool.Workers())

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "greensrv: shutdown:", err)
		}
		pool.Close()
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "greensrv:", err)
		os.Exit(1)
	}
}
