// Command greenweb runs one evaluation application (or an HTML file) under
// a chosen CPU policy and reports energy, QoS violations, configuration
// residency, and switching.
//
// Usage:
//
//	greenweb -app MSN -policy greenweb-i [-trace full|micro]
//	greenweb -file page.html -policy interactive
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/replay"
	"github.com/wattwiseweb/greenweb/internal/sim"

	greenweb "github.com/wattwiseweb/greenweb"
)

var policies = map[string]harness.Kind{
	"perf":        harness.Perf,
	"interactive": harness.Interactive,
	"ondemand":    harness.Ondemand,
	"powersave":   harness.Powersave,
	"greenweb-i":  harness.GreenWebI,
	"greenweb-u":  harness.GreenWebU,
	"ebs":         harness.EBSKind,
}

func main() {
	appName := flag.String("app", "", "evaluation application name (see -list)")
	file := flag.String("file", "", "run an HTML file instead of a catalog application")
	policy := flag.String("policy", "greenweb-i", "perf|interactive|ondemand|powersave|greenweb-i|greenweb-u")
	traceKind := flag.String("trace", "full", "which interaction trace to replay: full|micro (catalog apps)")
	list := flag.Bool("list", false, "list catalog applications and exit")
	framesOut := flag.String("frames", "", "write the frame timeline as JSON to this file")
	flag.Parse()

	if *list {
		for _, a := range apps.All() {
			fmt.Printf("%-11s  %-8s %-10s %v\n", a.Name, a.Interaction, a.QoSType, a.QoSTarget)
		}
		return
	}

	if *file != "" {
		runFile(*file, *policy)
		return
	}

	kind, ok := policies[strings.ToLower(*policy)]
	if !ok {
		fail("unknown policy %q", *policy)
	}
	app, ok := apps.ByName(*appName)
	if !ok {
		fail("unknown app %q (use -list)", *appName)
	}
	var trace *replay.Trace
	switch *traceKind {
	case "full":
		trace = app.Full
	case "micro":
		trace = app.Micro
	default:
		fail("unknown trace kind %q", *traceKind)
	}

	run, err := harness.Execute(app, kind, trace)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("app:          %s (%s, %s %v)\n", app.Name, app.Interaction, app.QoSType, app.QoSTarget)
	fmt.Printf("policy:       %s\n", kind)
	fmt.Printf("trace:        %s (%d events over %v)\n", trace.Name, trace.Events(), trace.Duration())
	fmt.Printf("load latency: %v\n", run.LoadLatency)
	fmt.Printf("frames:       %d\n", run.Frames)
	fmt.Printf("energy:       %.3f J (interaction), %.3f J (total)\n", float64(run.Energy), float64(run.TotalEnergy))
	fmt.Printf("violations:   %.2f%% (imperceptible), %.2f%% (usable)\n", run.ViolationI, run.ViolationU)
	fmt.Printf("switches:     %d frequency, %d migrations\n", run.Switches.FreqSwitches, run.Switches.Migrations)
	fmt.Println("residency:")
	printResidency(run.Residency)

	if *framesOut != "" {
		data, err := browser.ExportFrames(run.FrameResults)
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*framesOut, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("frame timeline written to %s (%d frames)\n", *framesOut, len(run.FrameResults))
	}
}

func printResidency(res map[acmp.Config]sim.Duration) {
	var total float64
	for _, d := range res {
		total += d.Seconds()
	}
	if total == 0 {
		return
	}
	cfgs := make([]acmp.Config, 0, len(res))
	for cfg := range res {
		cfgs = append(cfgs, cfg)
	}
	acmp.SortConfigs(cfgs)
	for _, cfg := range cfgs {
		fmt.Printf("  %-14s %5.1f%%\n", cfg.String(), res[cfg].Seconds()/total*100)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "greenweb: "+format+"\n", args...)
	os.Exit(1)
}

func runFile(path, policy string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var p greenweb.Policy
	switch strings.ToLower(policy) {
	case "perf":
		p = greenweb.PerfPolicy()
	case "interactive":
		p = greenweb.InteractivePolicy()
	case "ondemand":
		p = greenweb.OndemandPolicy()
	case "powersave":
		p = greenweb.PowersavePolicy()
	case "greenweb-i":
		p = greenweb.GreenWebPolicy(greenweb.Imperceptible)
	case "greenweb-u":
		p = greenweb.GreenWebPolicy(greenweb.Usable)
	default:
		fail("unknown policy %q", policy)
	}
	s, err := greenweb.Open(string(data), p)
	if err != nil {
		fail("%v", err)
	}
	s.Settle()
	s.Stop()
	fmt.Printf("policy:       %s\n", p.Name())
	fmt.Printf("load latency: %v\n", s.LoadLatency())
	fmt.Printf("frames:       %d\n", len(s.Frames()))
	fmt.Printf("energy:       %.3f J\n", s.Energy())
	fmt.Printf("violations:   %.2f%% (I), %.2f%% (U)\n",
		s.Violation(greenweb.Imperceptible), s.Violation(greenweb.Usable))
	fmt.Println("annotations:")
	for _, a := range s.Annotations() {
		fmt.Println("  " + a)
	}
	res := s.Residency()
	keys := make([]string, 0, len(res))
	for k := range res {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("residency:")
	for _, k := range keys {
		fmt.Printf("  %-14s %5.1f%%\n", k, res[k]*100)
	}
}
