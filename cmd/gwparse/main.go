// Command gwparse parses CSS (from a file or stdin), validates any GreenWeb
// rules it contains, and dumps the parsed annotations — a linter for
// hand-written QoS rules.
//
// Usage:
//
//	gwparse style.css
//	cat style.css | gwparse
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wattwiseweb/greenweb/internal/css"
)

func main() {
	flag.Parse()

	var data []byte
	var err error
	if flag.NArg() > 0 {
		data, err = os.ReadFile(flag.Arg(0))
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gwparse:", err)
		os.Exit(1)
	}

	sheet, errs := css.Parse(string(data))
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "gwparse: parse:", e)
	}

	bad := len(errs)
	qosRules := 0
	for _, rule := range sheet.Rules {
		for _, d := range rule.Decls {
			ev, ok := css.IsQoSProperty(d.Property)
			if !ok {
				continue
			}
			ann, err := css.ParseQoSValue(ev, d.Value)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gwparse: %v\n", err)
				bad++
				continue
			}
			for _, sel := range rule.Selectors {
				if !sel.HasQoS() {
					fmt.Fprintf(os.Stderr, "gwparse: selector %q declares %s but lacks the :QoS pseudo-class\n",
						sel.String(), d.Property)
					bad++
					continue
				}
				qosRules++
				fmt.Printf("%-30s %s (specificity %v)\n", sel.String(), ann, sel.Specificity())
			}
		}
	}
	fmt.Printf("%d rules, %d GreenWeb annotations, %d problems\n", len(sheet.Rules), qosRules, bad)
	if bad > 0 {
		os.Exit(1)
	}
}
