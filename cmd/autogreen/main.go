// Command autogreen automatically annotates a Web application with
// GreenWeb QoS rules (the paper's AUTOGREEN system, Sec. 5): it loads the
// page in a scratch engine, profiles every event listener to classify its
// QoS type, and writes the HTML back out with generated rules injected.
//
// Usage:
//
//	autogreen -in app.html -out annotated.html [-report]
//	autogreen -app Todo -report        # analyze a catalog app's base HTML
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/autogreen"
)

func main() {
	in := flag.String("in", "", "input HTML file")
	out := flag.String("out", "", "output HTML file (default: stdout)")
	appName := flag.String("app", "", "analyze a catalog application's unannotated HTML instead of a file")
	report := flag.Bool("report", false, "print the per-event classification report")
	flag.Parse()

	var src string
	switch {
	case *appName != "":
		app, ok := apps.ByName(*appName)
		if !ok {
			fail("unknown app %q", *appName)
		}
		src = app.BaseHTML
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			fail("%v", err)
		}
		src = string(data)
	default:
		fail("need -in FILE or -app NAME")
	}

	annotated, rep, err := autogreen.Annotate(src)
	if err != nil {
		fail("%v", err)
	}

	if *report {
		fmt.Fprintln(os.Stderr, "AUTOGREEN classification:")
		for _, f := range rep.Findings {
			evidence := ""
			switch {
			case f.RAF:
				evidence = " (requestAnimationFrame)"
			case f.Animate:
				evidence = " (animate())"
			case f.Transition:
				evidence = " (CSS transition)"
			}
			fmt.Fprintf(os.Stderr, "  %-28s on%-11s → %s%s\n",
				f.Selector, f.Event, f.Annotation.Type, evidence)
		}
		for _, s := range rep.Skipped {
			fmt.Fprintf(os.Stderr, "  skipped: %s\n", s)
		}
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(annotated), 0o644); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Print(annotated)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "autogreen: "+format+"\n", args...)
	os.Exit(1)
}
