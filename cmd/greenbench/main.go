// Command greenbench regenerates every table and figure of the paper's
// evaluation section against the simulated substrate and prints a plain-
// text report (the data recorded in EXPERIMENTS.md).
//
// Usage:
//
//	greenbench [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wattwiseweb/greenweb/internal/harness"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := harness.RenderAll(w, harness.NewSuite()); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}
