// Command greenbench regenerates every table and figure of the paper's
// evaluation section against the simulated substrate and prints a plain-
// text report (the data recorded in EXPERIMENTS.md).
//
// The experiment cells run through the internal/fleet worker pool — one
// isolated simulated device per job, fanned across the CPUs — and merge
// deterministically, so the report bytes match the sequential path at any
// worker count.
//
// With -trace, greenbench instead runs a single (app, governor) cell and
// writes its per-frame/per-event energy-attribution timeline as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto:
//
//	greenbench -trace out.json [-trace-app Name] [-trace-kind GreenWeb-U]
//
// Usage:
//
//	greenbench [-o report.txt] [-workers N] [-seq]
//	greenbench -trace out.json [-trace-app NAME] [-trace-kind KIND]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/ledger"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	workers := flag.Int("workers", 0, "fleet worker count (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "bypass the fleet and compute every cell sequentially")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON for one run and exit (skips the report)")
	traceApp := flag.String("trace-app", "", "application for -trace (default: first catalog app)")
	traceKind := flag.String("trace-kind", string(harness.GreenWebU), "governor kind for -trace")
	flag.Parse()

	if *trace != "" {
		if err := writeTrace(*trace, *traceApp, *traceKind); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	suite := harness.NewSuite()
	if !*seq {
		pool := fleet.New(fleet.Options{Workers: *workers})
		defer pool.Close()
		suite.SetPrefetcher(fleet.NewSuiteRunner(context.Background(), pool))
	}
	if err := harness.RenderAll(w, suite); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}

// writeTrace runs one full-interaction cell and exports its attribution
// timeline as Chrome trace-event JSON.
func writeTrace(path, appName, kindName string) error {
	if appName == "" {
		appName = apps.Names()[0]
	}
	app, ok := apps.ByName(appName)
	if !ok {
		return fmt.Errorf("unknown app %q (have %v)", appName, apps.Names())
	}
	kind, err := harness.ParseKind(kindName)
	if err != nil {
		return err
	}
	run, err := harness.Execute(app, kind, app.Full)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	proc := ledger.Process{
		PID:   1,
		Name:  fmt.Sprintf("%s/%s", app.Name, kind),
		Spans: run.Spans,
		Marks: run.ConfigMarks,
	}
	if err := ledger.WriteTrace(f, proc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greenbench: wrote %d spans (%.3f J frames, %.3f J idle) to %s\n",
		len(run.Spans), float64(run.FrameEnergy), float64(run.IdleEnergy), path)
	return nil
}
