// Command greenbench regenerates every table and figure of the paper's
// evaluation section against the simulated substrate and prints a plain-
// text report (the data recorded in EXPERIMENTS.md).
//
// The experiment cells run through the internal/fleet worker pool — one
// isolated simulated device per job, fanned across the CPUs — and merge
// deterministically, so the report bytes match the sequential path at any
// worker count.
//
// Usage:
//
//	greenbench [-o report.txt] [-workers N] [-seq]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
)

func main() {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	workers := flag.Int("workers", 0, "fleet worker count (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "bypass the fleet and compute every cell sequentially")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	suite := harness.NewSuite()
	if !*seq {
		pool := fleet.New(fleet.Options{Workers: *workers})
		defer pool.Close()
		suite.SetPrefetcher(fleet.NewSuiteRunner(context.Background(), pool))
	}
	if err := harness.RenderAll(w, suite); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}
