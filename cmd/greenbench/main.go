// Command greenbench regenerates every table and figure of the paper's
// evaluation section against the simulated substrate and prints a plain-
// text report (the data recorded in EXPERIMENTS.md).
//
// The experiment cells run through the internal/fleet worker pool — one
// isolated simulated device per job, fanned across the CPUs — and merge
// deterministically, so the report bytes match the sequential path at any
// worker count.
//
// With -trace, greenbench instead runs a single (app, governor) cell and
// writes its per-frame/per-event energy-attribution timeline as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto:
//
//	greenbench -trace out.json [-trace-app Name] [-trace-kind GreenWeb-U]
//
// With -faults, greenbench runs a deterministic fault sweep instead of the
// report: every catalog app under Perf, GreenWeb-I, and GreenWeb-U with the
// given fault spec active, streamed as one NDJSON row per cell (fault
// counters, retry provenance, quarantine state). The spec is "default", an
// inline JSON object, or @file; a fixed -fault-seed makes the output
// byte-reproducible. -trace honors -faults too, tracing one faulted run.
//
// Profiling and cache control (see EXPERIMENTS.md):
//
//   - -cpuprofile f / -memprofile f write standard pprof profiles of the
//     run for `go tool pprof`;
//   - -no-asset-cache disables the parse-once page asset cache, re-parsing
//     every cell as earlier versions did. Output bytes are identical either
//     way — the cache only skips redundant real work, never simulated cost.
//   - -no-obs disables the observability layer (metrics counters and the
//     per-frame decision recorder). Like the asset cache, it is out-of-band:
//     report and sweep bytes are identical with obs on or off (CI diffs them).
//   - -no-vm executes scripts on the tree-walking interpreter instead of the
//     bytecode VM. The VM charges the identical op sequence, so report and
//     sweep bytes are identical either way (CI diffs them too) — only
//     wall-clock time differs.
//
// Usage:
//
//	greenbench [-o report.txt] [-workers N] [-seq] [-no-asset-cache] [-no-vm]
//	greenbench [-cpuprofile cpu.pb] [-memprofile mem.pb] ...
//	greenbench -faults default|JSON|@file [-fault-seed S] [-o rows.ndjson]
//	greenbench -trace out.json [-trace-app NAME] [-trace-kind KIND]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/wattwiseweb/greenweb/internal/apps"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/faults"
	"github.com/wattwiseweb/greenweb/internal/fleet"
	"github.com/wattwiseweb/greenweb/internal/harness"
	"github.com/wattwiseweb/greenweb/internal/js"
	"github.com/wattwiseweb/greenweb/internal/ledger"
	"github.com/wattwiseweb/greenweb/internal/obs"
)

func main() {
	os.Exit(run())
}

// run carries main's body so deferred profile/file finalizers execute
// before the process exits (os.Exit skips defers when called directly).
func run() int {
	out := flag.String("o", "", "write the report to a file instead of stdout")
	workers := flag.Int("workers", 0, "fleet worker count (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "bypass the fleet and compute every cell sequentially")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON for one run and exit (skips the report)")
	traceApp := flag.String("trace-app", "", "application for -trace (default: first catalog app)")
	traceKind := flag.String("trace-kind", string(harness.GreenWebU), "governor kind for -trace")
	faultsArg := flag.String("faults", "", `fault spec: "default", inline JSON, or @file (runs the fault sweep instead of the report)`)
	faultSeed := flag.Int64("fault-seed", 0, "override the fault spec's seed (0 = keep the spec's own)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to a file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to a file (go tool pprof)")
	noAssetCache := flag.Bool("no-asset-cache", false, "disable the parse-once page asset cache (re-parse every cell; output must be identical)")
	noObs := flag.Bool("no-obs", false, "disable metrics and decision recording (output must be identical)")
	noVM := flag.Bool("no-vm", false, "execute scripts on the tree-walking interpreter instead of the bytecode VM (output must be identical)")
	stageWorkers := flag.Int("stage-workers", 0, "render-pipeline stage threads per engine (0 or 1 = serial frame production)")
	noParallelRender := flag.Bool("no-parallel-render", false, "force serial frame production (output must be identical to the default serial pipeline)")
	flag.Parse()

	if *noAssetCache {
		browser.SetAssetCache(false)
	}
	if *noObs {
		obs.SetEnabled(false)
	}
	if *noVM {
		js.SetVM(false)
	}
	if !harness.ValidStageWorkers(*stageWorkers) {
		fmt.Fprintf(os.Stderr, "greenbench: -stage-workers %d out of range [0, %d]\n", *stageWorkers, browser.MaxStageWorkers)
		return 1
	}
	if *noParallelRender && *stageWorkers > 1 {
		fmt.Fprintln(os.Stderr, "greenbench: -no-parallel-render conflicts with -stage-workers > 1")
		return 1
	}
	if *noParallelRender {
		browser.SetDefaultStageWorkers(1)
	} else {
		browser.SetDefaultStageWorkers(*stageWorkers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "greenbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "greenbench:", err)
			}
		}()
	}

	spec, err := parseFaultSpec(*faultsArg, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		return 1
	}

	if *trace != "" {
		if err := writeTrace(*trace, *traceApp, *traceKind, spec); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			return 1
		}
		return 0
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	if spec != nil {
		if err := faultSweep(w, spec, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			return 1
		}
		return 0
	}

	suite := harness.NewSuite()
	if !*seq {
		pool := fleet.New(fleet.Options{Workers: *workers})
		defer pool.Close()
		suite.SetPrefetcher(fleet.NewSuiteRunner(context.Background(), pool))
	}
	if err := harness.RenderAll(w, suite); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		return 1
	}
	return 0
}

// parseFaultSpec resolves the -faults argument: "" (no faults), "default"
// (the stock spec), an inline JSON object, or @file. A non-zero seed
// overrides the spec's own.
func parseFaultSpec(arg string, seed int64) (*faults.Spec, error) {
	if arg == "" {
		return nil, nil
	}
	var spec *faults.Spec
	switch {
	case arg == "default":
		spec = faults.Default(seed)
	case strings.HasPrefix(arg, "@"):
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, fmt.Errorf("-faults: %w", err)
		}
		spec = new(faults.Spec)
		if err := json.Unmarshal(data, spec); err != nil {
			return nil, fmt.Errorf("-faults %s: %w", arg, err)
		}
	default:
		spec = new(faults.Spec)
		if err := json.Unmarshal([]byte(arg), spec); err != nil {
			return nil, fmt.Errorf("-faults: %w (want \"default\", JSON, or @file)", err)
		}
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// faultSweep fans every catalog app × headline governor across the fleet
// with the fault spec active and streams the deterministic NDJSON merge.
func faultSweep(w io.Writer, spec *faults.Spec, workers int) error {
	kinds := []harness.Kind{harness.Perf, harness.GreenWebI, harness.GreenWebU}
	var jobs []fleet.Job
	for _, name := range apps.Names() {
		for _, k := range kinds {
			jobs = append(jobs, fleet.Job{App: name, Kind: k, Phase: fleet.Full, Faults: spec})
		}
	}
	pool := fleet.New(fleet.Options{Workers: workers, MaxAttempts: 3})
	defer pool.Close()
	return fleet.WriteResults(w, pool.RunSweep(context.Background(), jobs), true)
}

// writeTrace runs one full-interaction cell (optionally faulted) and exports
// its attribution timeline as Chrome trace-event JSON.
func writeTrace(path, appName, kindName string, spec *faults.Spec) error {
	if appName == "" {
		appName = apps.Names()[0]
	}
	app, ok := apps.ByName(appName)
	if !ok {
		return fmt.Errorf("unknown app %q (have %v)", appName, apps.Names())
	}
	kind, err := harness.ParseKind(kindName)
	if err != nil {
		return err
	}
	run, err := harness.ExecuteFaulted(app, kind, app.Full, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	proc := ledger.Process{
		PID:   1,
		Name:  fmt.Sprintf("%s/%s", app.Name, kind),
		Spans: run.Spans,
		Marks: run.ConfigMarks,
	}
	if err := ledger.WriteTrace(f, proc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greenbench: wrote %d spans (%.3f J frames, %.3f J idle) to %s\n",
		len(run.Spans), float64(run.FrameEnergy), float64(run.IdleEnergy), path)
	return nil
}
