// Quickstart: annotate a small application with GreenWeb QoS rules, run it
// under the GreenWeb runtime and under the Perf baseline, and compare the
// energy the two spend delivering the same interaction.
package main

import (
	"fmt"
	"log"

	greenweb "github.com/wattwiseweb/greenweb"
)

// page is a minimal application: a button whose handler does a moderate
// amount of work. The GreenWeb rules (note the :QoS pseudo-class and the
// on<event>-qos properties) declare that the click is judged by a single
// response frame users expect quickly, and that loading is a long single
// interaction.
const page = `<html><head><style>
	body:QoS   { onload-qos: single, long; }
	div#go:QoS { onclick-qos: single, short; }
</style></head>
<body>
	<div id="go">run</div>
	<div id="out"></div>
	<script>
		var runs = 0;
		document.getElementById("go").addEventListener("click", function(e) {
			runs++;
			work(80); // the computation behind the response
			document.getElementById("out").textContent = "done " + runs;
		});
	</script>
</body></html>`

func drive(p greenweb.Policy) *greenweb.Session {
	s, err := greenweb.Open(page, p)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Tap("go")
		s.Settle()
	}
	s.Stop()
	return s
}

func main() {
	perf := drive(greenweb.PerfPolicy())
	gw := drive(greenweb.GreenWebPolicy(greenweb.Usable))

	fmt.Println("annotations on the page:")
	for _, a := range gw.Annotations() {
		fmt.Println("  " + a)
	}
	fmt.Printf("\nPerf:       %.3f J, violations %.2f%%\n",
		perf.Energy(), perf.Violation(greenweb.Usable))
	fmt.Printf("GreenWeb-U: %.3f J, violations %.2f%%\n",
		gw.Energy(), gw.Violation(greenweb.Usable))
	fmt.Printf("\nenergy saving: %.1f%%\n", 100*(1-gw.Energy()/perf.Energy()))
	fmt.Println("\nGreenWeb-U residency (where the time went):")
	for cfg, share := range gw.Residency() {
		if share > 0.01 {
			fmt.Printf("  %-14s %5.1f%%\n", cfg, share*100)
		}
	}
}
