// CSS-transition annotation — the paper's Fig. 4 example, runnable.
//
// A div's width property has a declared 2-second CSS transition. Tapping
// it sets a new width, and the browser animates the change. The developer
// knows the QoS experience is dictated by animation smoothness, so the
// touchstart event is annotated "continuous" with the default targets —
// without having to know *how* the animation is implemented.
package main

import (
	"fmt"
	"log"

	greenweb "github.com/wattwiseweb/greenweb"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

const page = `<html><head><style>
	#ex { width: 100px; transition: width 2s; }

	/* Fig. 4, lines 7-9: the GreenWeb annotation. */
	div#ex:QoS { ontouchstart-qos: continuous; }
</style></head>
<body>
	<div id="ex">expand me</div>
	<script>
		document.getElementById("ex").addEventListener("touchstart", function(e) {
			// Fig. 4's animateExpanding callback: resetting the width
			// starts the declared 2-second transition.
			document.getElementById("ex").style.width = "500px";
		});
		document.getElementById("ex").addEventListener("transitionend", function(e) {
			console.log("transition finished at width " + e.target.style.width);
		});
	</script>
</body></html>`

func main() {
	s, err := greenweb.Open(page, greenweb.GreenWebPolicy(greenweb.Usable))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotations:", s.Annotations())

	before := len(s.Frames())
	s.Swipe("ex", 1, 16*sim.Millisecond) // a touch on the element
	s.RunFor(3 * sim.Second)             // the 2 s transition plays out
	s.Settle()
	s.Stop()

	frames := s.Frames()[before:]
	fmt.Printf("\nthe tap generated %d animation frames over ~2 s\n", len(frames))
	late := 0
	for _, fr := range frames {
		if fr.ProductionLatency > 33300*sim.Microsecond {
			late++
		}
	}
	fmt.Printf("frames over the usable target (33.3 ms): %d\n", late)
	fmt.Printf("energy: %.3f J, violations: %.2f%%\n", s.Energy(), s.Violation(greenweb.Usable))
	for _, line := range s.ConsoleLines() {
		fmt.Println("console:", line)
	}
}
