// AUTOGREEN — automatic annotation of an unannotated application (paper
// Sec. 5). The example application mixes three animation mechanisms
// (requestAnimationFrame, animate(), CSS transition) and a plain handler;
// AUTOGREEN profiles each event callback, classifies its QoS type, and
// injects the generated rules. The annotated page then runs under the
// GreenWeb runtime without any developer intervention.
package main

import (
	"fmt"
	"log"

	greenweb "github.com/wattwiseweb/greenweb"
)

const plainPage = `<html><head><style>
	#drawer { width: 80px; transition: width 250ms; }
</style></head>
<body>
	<div id="spin">spinner</div>
	<div id="drawer">drawer</div>
	<div id="slide">slide</div>
	<button id="save">save</button>
	<script>
		document.getElementById("spin").addEventListener("touchstart", function(e) {
			var n = 0;
			function turn() {
				n++;
				document.getElementById("spin").style.height = (n % 30) + "px";
				if (n < 30) { requestAnimationFrame(turn); }
			}
			requestAnimationFrame(turn);
		});
		document.getElementById("drawer").addEventListener("click", function(e) {
			document.getElementById("drawer").style.width = "300px";
		});
		document.getElementById("slide").addEventListener("click", function(e) {
			animate(document.getElementById("slide"), "width", 0, 200, 150);
		});
		document.getElementById("save").addEventListener("click", function(e) {
			work(60);
			e.target.textContent = "saved";
		});
	</script>
</body></html>`

func main() {
	annotated, report, err := greenweb.AutoAnnotate(plainPage)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AUTOGREEN classification (detected evidence in parentheses):")
	for _, f := range report.Findings {
		evidence := "no animation"
		switch {
		case f.RAF:
			evidence = "requestAnimationFrame"
		case f.Animate:
			evidence = "animate()"
		case f.Transition:
			evidence = "CSS transition"
		}
		fmt.Printf("  %-22s on%-10s → %-10v (%s)\n", f.Selector, f.Event, f.Annotation.Type, evidence)
	}

	// The annotated application runs under GreenWeb with no manual rules.
	s, err := greenweb.Open(annotated, greenweb.GreenWebPolicy(greenweb.Usable))
	if err != nil {
		log.Fatal(err)
	}
	s.Tap("spin")
	s.Settle()
	s.Tap("save")
	s.Settle()
	s.Stop()
	fmt.Printf("\nannotated app ran: %d frames, %.3f J, violations %.2f%%\n",
		len(s.Frames()), s.Energy(), s.Violation(greenweb.Usable))
}
