// requestAnimationFrame annotation with explicit QoS targets — the paper's
// Fig. 5 example, runnable.
//
// Finger movement drives a rAF-based animation. The developers know the
// animation does not need a full 60 FPS, so they annotate touchmove as
// continuous and overwrite the default targets with 20 ms (imperceptible)
// and 100 ms (usable) — the third rule form of Table 2.
package main

import (
	"fmt"
	"log"

	greenweb "github.com/wattwiseweb/greenweb"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

const page = `<html><head><style>
	/* Fig. 5, lines 3-5: continuous with explicit targets (ms). */
	div#cv:QoS { ontouchmove-qos: continuous, 20, 100; }
</style></head>
<body>
	<div id="cv">canvas</div>
	<script>
		var ticking = false;
		var pos = 0;
		document.getElementById("cv").addEventListener("touchmove", function(e) {
			pos += e.deltaY;
			if (!ticking) {
				ticking = true;
				requestAnimationFrame(function(ts) {
					work(25); // redraw at the new position
					document.getElementById("cv").style.height = pos + "px";
					ticking = false;
				});
			}
		});
	</script>
</body></html>`

func main() {
	for _, scenario := range []greenweb.Scenario{greenweb.Imperceptible, greenweb.Usable} {
		s, err := greenweb.Open(page, greenweb.GreenWebPolicy(scenario))
		if err != nil {
			log.Fatal(err)
		}
		s.Swipe("cv", 60, 16*sim.Millisecond)
		s.Settle()
		s.Stop()
		fmt.Printf("%-14v energy %.3f J, violations %.2f%%, residency:",
			scenario, s.Energy(), s.Violation(scenario))
		for cfg, share := range s.Residency() {
			if share > 0.05 {
				fmt.Printf(" %s=%.0f%%", cfg, share*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nwith the loose 20/100 ms targets, even the imperceptible scenario")
	fmt.Println("can use low-power configurations the default 16.6 ms would forbid")
}
