// User-agent intervention against mis-annotation — the defense the paper
// sketches in Sec. 8. A page demands an absurd 1 ms QoS target on an
// endless animation (an energy bug or a deliberate attack), forcing the
// runtime to peak performance forever. The UAI policy assigns each event
// class an energy budget; once exceeded, the annotation is ignored and the
// event is treated as unannotated.
package main

import (
	"fmt"
	"log"

	"github.com/wattwiseweb/greenweb/internal/acmp"
	"github.com/wattwiseweb/greenweb/internal/browser"
	"github.com/wattwiseweb/greenweb/internal/core"
	"github.com/wattwiseweb/greenweb/internal/qos"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

const misannotated = `<html><head><style>
	/* Malicious or buggy: a 1 ms target nothing can meet. */
	div#spin:QoS { onclick-qos: continuous, 1, 1; }
</style></head>
<body>
	<div id="spin">widget</div>
	<script>
		var started = false;
		document.getElementById("spin").addEventListener("click", function(e) {
			if (started) { return; }
			started = true;
			var n = 0;
			function loop() {
				n++;
				work(40);
				document.getElementById("spin").style.height = (n % 40) + "px";
				requestAnimationFrame(loop); // never stops
			}
			requestAnimationFrame(loop);
		});
	</script>
</body></html>`

func run(uai *core.UAIPolicy) (joules float64, suppressed []string) {
	s := sim.New()
	cpu := acmp.NewCPU(s, acmp.DefaultPower())
	e := browser.New(s, cpu, nil)
	opts := core.DefaultOptions(qos.Imperceptible)
	opts.UAI = uai
	e.SetGovernor(core.New(opts))
	if _, err := e.LoadPage(misannotated); err != nil {
		log.Fatal(err)
	}
	s.RunUntil(sim.Time(sim.Second))
	e.Inject(s.Now(), "click", "spin", nil)
	s.RunUntil(s.Now().Add(10 * sim.Second))
	if uai != nil {
		suppressed = uai.SuppressedClasses()
	}
	return float64(cpu.Energy()), suppressed
}

func main() {
	unprotected, _ := run(nil)
	fmt.Printf("without UAI: %.2f J over 10 s of runaway peak-pinned animation\n", unprotected)

	policy := core.NewUAIPolicy(0.5) // half a joule per event class
	protected, suppressed := run(policy)
	fmt.Printf("with UAI:    %.2f J — budget tripped, annotation ignored\n", protected)
	for _, class := range suppressed {
		fmt.Printf("  suppressed class: %s (spent %.2f J before the budget hit)\n",
			class, float64(policy.Spent(class)))
	}
	fmt.Printf("\nenergy saved by the intervention: %.1f%%\n", 100*(1-protected/unprotected))
}
