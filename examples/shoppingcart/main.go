// Shopping cart: a realistic mini-application exercising the breadth of
// the Web substrate — querySelector, JSON state, switch/try-catch control
// flow, array reduce, a rAF checkout animation — annotated with GreenWeb
// rules and driven under three policies for comparison.
package main

import (
	"fmt"
	"log"

	greenweb "github.com/wattwiseweb/greenweb"
	"github.com/wattwiseweb/greenweb/internal/sim"
)

const page = `<html><head><style>
	#status { width: 100px; }
	body:QoS          { onload-qos: single, long; }
	div[data-action]:QoS { onclick-qos: single, short; }
	div#checkout:QoS  { onclick-qos: continuous; }
</style></head>
<body>
	<div id="add-apple"  data-action="add"    data-sku="apple"  data-price="3">add apple</div>
	<div id="add-pear"   data-action="add"    data-sku="pear"   data-price="5">add pear</div>
	<div id="remove-one" data-action="remove" data-sku="apple">remove apple</div>
	<div id="checkout">checkout</div>
	<div id="status">empty</div>
	<div id="total">0</div>
	<script>
		var cart = JSON.parse('{"items": []}');

		function render() {
			var total = cart.items.reduce(function(sum, it) { return sum + it.price; }, 0);
			document.querySelector("#total").textContent = "" + total;
			document.querySelector("#status").textContent = cart.items.length + " items";
		}

		function handle(e) {
			var action = e.target.getAttribute("data-action");
			try {
				switch (action) {
				case "add":
					cart.items.push({
						sku: e.target.getAttribute("data-sku"),
						price: Number(e.target.getAttribute("data-price"))
					});
					break;
				case "remove":
					var sku = e.target.getAttribute("data-sku");
					cart.items = cart.items.filter(function(it) { return it.sku !== sku; });
					break;
				default:
					throw "unknown action: " + action;
				}
				work(25); // cart revalidation, price rules
				render();
			} catch (err) {
				document.querySelector("#status").textContent = "error: " + err;
			}
		}

		var buttons = document.querySelectorAll("div[data-action]");
		for (var i = 0; i < buttons.length; i++) {
			buttons[i].addEventListener("click", handle);
		}

		document.querySelector("#checkout").addEventListener("click", function(e) {
			// Persist the cart, then play a progress animation.
			var snapshot = JSON.stringify(cart);
			console.log("checkout", snapshot);
			var f = 0;
			function spin() {
				f++;
				work(12);
				document.querySelector("#status").style.width = (100 + f * 8) + "px";
				if (f < 30) { requestAnimationFrame(spin); }
			}
			requestAnimationFrame(spin);
		});
	</script>
</body></html>`

func drive(p greenweb.Policy) *greenweb.Session {
	s, err := greenweb.Open(page, p)
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []string{"add-apple", "add-pear", "add-apple", "remove-one"} {
		s.Tap(target)
		s.RunFor(300 * sim.Millisecond)
	}
	s.Tap("checkout")
	s.Settle()
	s.Stop()
	return s
}

func main() {
	var sessions []*greenweb.Session
	policies := []greenweb.Policy{
		greenweb.PerfPolicy(),
		greenweb.InteractivePolicy(),
		greenweb.GreenWebPolicy(greenweb.Usable),
	}
	for _, p := range policies {
		sessions = append(sessions, drive(p))
	}

	// The application state is policy-independent — scheduling never
	// changes semantics, only time and energy.
	ref := sessions[0].ConsoleLines()
	for i, s := range sessions {
		lines := s.ConsoleLines()
		if len(lines) != len(ref) || lines[0] != ref[0] {
			log.Fatalf("policy %s changed app behaviour: %v", policies[i].Name(), lines)
		}
	}
	fmt.Println("cart state at checkout (all policies identical):")
	fmt.Println(" ", ref[0])

	fmt.Println("\npolicy comparison over the same session:")
	for i, s := range sessions {
		fmt.Printf("  %-12s %.3f J, %3d frames, violations %.2f%%\n",
			policies[i].Name(), s.Energy(), len(s.Frames()), s.Violation(greenweb.Usable))
	}
	perf, gw := sessions[0], sessions[2]
	fmt.Printf("\nGreenWeb-U saves %.1f%% vs Perf on this session\n",
		100*(1-gw.Energy()/perf.Energy()))
}
