// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its table/figure
// from scratch (fresh simulator, CPU, engines) and reports the headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints paper-comparable numbers
// (e.g. Fig9a reports avg_saving_I_pct / avg_saving_U_pct next to the
// paper's 31.9% / 78.0%).
package greenweb

import (
	"testing"

	"github.com/wattwiseweb/greenweb/internal/harness"
)

func BenchmarkTable1QoSCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1()
		if len(rows) != 3 {
			b.Fatal("table 1 wrong")
		}
	}
}

func BenchmarkTable2APIRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table2()
		if len(rows) != 3 {
			b.Fatal("table 2 wrong")
		}
	}
}

func BenchmarkTable3Applications(b *testing.B) {
	var rows []harness.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	var events, pct float64
	for _, r := range rows {
		events += float64(r.FullEvents)
		pct += r.AnnotatedPct
	}
	b.ReportMetric(events/float64(len(rows)), "avg_events")
	b.ReportMetric(pct/float64(len(rows)), "avg_annotated_pct")
}

func BenchmarkFig9aMicroEnergy(b *testing.B) {
	var saveI, saveU float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		saveI, saveU, _, _ = harness.Fig9Averages(rows)
	}
	b.ReportMetric(saveI, "avg_saving_I_pct") // paper: 31.9
	b.ReportMetric(saveU, "avg_saving_U_pct") // paper: 78.0
}

func BenchmarkFig9bMicroQoS(b *testing.B) {
	var violI, violU float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		_, _, violI, violU = harness.Fig9Averages(rows)
	}
	b.ReportMetric(violI, "extra_viol_I_pts") // paper: 1.3
	b.ReportMetric(violU, "extra_viol_U_pts") // paper: 1.2
}

func BenchmarkFig10aFullEnergy(b *testing.B) {
	var saveI, saveU float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		saveI, saveU, _, _ = harness.Fig10Averages(rows)
	}
	b.ReportMetric(saveI, "saving_vs_interactive_I_pct") // paper: 29.2
	b.ReportMetric(saveU, "saving_vs_interactive_U_pct") // paper: 66.0
}

func BenchmarkFig10bQoSImperceptible(b *testing.B) {
	var violI float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		_, _, violI, _ = harness.Fig10Averages(rows)
	}
	b.ReportMetric(violI, "extra_viol_I_pts") // paper: 0.8
}

func BenchmarkFig10cQoSUsable(b *testing.B) {
	var violU float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		_, _, _, violU = harness.Fig10Averages(rows)
	}
	b.ReportMetric(violU, "extra_viol_U_pts") // paper: 0.6
}

func BenchmarkFig11aConfigDistributionI(b *testing.B) {
	var big float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig11(harness.GreenWebI)
		if err != nil {
			b.Fatal(err)
		}
		big = 0
		for _, r := range rows {
			big += r.Big
		}
		big /= float64(len(rows))
	}
	b.ReportMetric(big*100, "big_cluster_share_pct")
}

func BenchmarkFig11bConfigDistributionU(b *testing.B) {
	var little float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig11(harness.GreenWebU)
		if err != nil {
			b.Fatal(err)
		}
		little = 0
		for _, r := range rows {
			little += r.Little
		}
		little /= float64(len(rows))
	}
	b.ReportMetric(little*100, "little_cluster_share_pct")
}

func BenchmarkFig12Switching(b *testing.B) {
	var freq, mig float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().Fig12()
		if err != nil {
			b.Fatal(err)
		}
		freq, mig = 0, 0
		for _, r := range rows {
			freq += (r.FreqI + r.FreqU) / 2
			mig += (r.MigI + r.MigU) / 2
		}
		freq /= float64(len(rows))
		mig /= float64(len(rows))
	}
	b.ReportMetric(freq, "freq_switch_per_frame_pct")
	b.ReportMetric(mig, "migration_per_frame_pct")
}

func BenchmarkAblationSingleCluster(b *testing.B) {
	var fullPct, bigOnlyPct float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.NewSuite().AblationSingleCluster()
		if err != nil {
			b.Fatal(err)
		}
		fullPct, bigOnlyPct = 0, 0
		for _, r := range rows {
			fullPct += r.FullPct
			bigOnlyPct += r.BigOnlyPct
		}
		fullPct /= float64(len(rows))
		bigOnlyPct /= float64(len(rows))
	}
	b.ReportMetric(fullPct, "acmp_energy_pct_of_perf")
	b.ReportMetric(bigOnlyPct, "bigonly_energy_pct_of_perf")
}
